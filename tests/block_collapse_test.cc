// Block collapsing + delta re-solve (DESIGN.md §12, docs/SCALING.md).
// The contract under test is bit-identity: every fast path — collapsed
// ordering, per-class cost memoization, context reuse — must produce
// exactly the result the plain solver produces, not an approximation.
#include <gtest/gtest.h>

#include "core/block_collapse.h"
#include "core/dp_solver.h"
#include "core/ordering.h"
#include "cost/cost_cache.h"
#include "models/models.h"
#include "ops/ops.h"
#include "test_util.h"
#include "util/rng.h"

namespace pase {
namespace {

DpOptions options_for(i64 p, bool collapse = false) {
  DpOptions opt;
  opt.config_options.max_devices = p;
  opt.cost_params = CostParams::for_machine(MachineSpec::gtx1080ti(p));
  opt.collapse_blocks = collapse;
  return opt;
}

/// Strategy AND cost must be exactly equal — the collapse/reuse contract
/// is bit-identity, so no EXPECT_NEAR anywhere in this file.
void expect_same_result(const DpResult& a, const DpResult& b) {
  ASSERT_EQ(a.status, b.status);
  EXPECT_EQ(a.best_cost, b.best_cost);
  EXPECT_EQ(a.strategy, b.strategy);
}

void expect_same_ordering(const Ordering& a, const Ordering& b) {
  ASSERT_EQ(a.seq, b.seq);
  EXPECT_EQ(a.pos, b.pos);
  ASSERT_EQ(a.dep_sets.size(), b.dep_sets.size());
  for (size_t i = 0; i < a.dep_sets.size(); ++i)
    EXPECT_TRUE(a.dep_sets[i] == b.dep_sets[i]) << "dep_sets[" << i << "]";
}

/// A seeded random repeated-block chain: one block of `period` FC nodes
/// with random (but per-offset fixed) dims, instantiated `repeats` times;
/// consecutive blocks wired tail -> head, plus an intra-block skip edge so
/// blocks are not plain paths. Every copy is a verbatim id-shifted clone
/// of the first, which is precisely what detect_blocks looks for.
Graph repeated_block_graph(i64 period, i64 repeats, u64 seed) {
  Rng rng(seed);
  static const i64 sizes[] = {8, 16, 32, 64};
  std::vector<i64> width(static_cast<size_t>(period) + 1);
  for (i64& w : width) w = sizes[rng.uniform(4)];
  const i64 batch = sizes[rng.uniform(4)];
  Graph g;
  NodeId prev = kInvalidNode;
  for (i64 r = 0; r < repeats; ++r) {
    NodeId block_head = kInvalidNode;
    for (i64 j = 0; j < period; ++j) {
      const NodeId fc = g.add_node(ops::fully_connected(
          "B" + std::to_string(r) + "_" + std::to_string(j), batch,
          width[static_cast<size_t>(j) + 1], width[static_cast<size_t>(j)]));
      if (prev != kInvalidNode)
        g.add_edge_named(prev, fc, {"b", "n"}, {"b", "c"});
      if (j == 0) block_head = fc;
      if (j == period - 1 && period >= 3)
        g.add_edge_named(block_head, fc, {"b", "n"}, {"b", "c"});
      prev = fc;
    }
  }
  g.validate();
  return g;
}

// ---------------------------------------------------------------------------
// Detection

TEST(BlockCollapse, DetectsTransformerStackRun) {
  const Graph g = models::transformer_stack(12);
  const CostCache classes(g);
  const BlockPlan plan = detect_blocks(g, classes);
  ASSERT_TRUE(plan.fired());
  // 6 nodes per decoder block; the embedding head keeps the first block
  // from absorbing node 0, and the run spans every remaining block.
  EXPECT_EQ(plan.period, 6);
  EXPECT_EQ(plan.count, 11);
  EXPECT_EQ(plan.node_class.size(), static_cast<size_t>(g.num_nodes()));
}

TEST(BlockCollapse, DetectsPeriodOneRunInUniformChain) {
  // Identical FC layers chained: the degenerate block of one node.
  const Graph g = repeated_block_graph(/*period=*/1, /*repeats=*/8,
                                       /*seed=*/3);
  const BlockPlan plan = detect_blocks(g, CostCache(g));
  ASSERT_TRUE(plan.fired());
  EXPECT_EQ(plan.period, 1);
  EXPECT_GE(plan.count, 6);
}

TEST(BlockCollapse, DoesNotFireOnIrregularGraphs) {
  // AlexNet's layers all differ; a random graph has no periodic wiring.
  EXPECT_FALSE(
      detect_blocks(models::alexnet(), CostCache(models::alexnet()))
          .fired());
  const Graph rnd = testing::random_graph(14, 4, 11);
  EXPECT_FALSE(detect_blocks(rnd, CostCache(rnd)).fired());
}

// ---------------------------------------------------------------------------
// Ordering: extrapolation + certification == generate_seq, bit for bit

TEST(BlockCollapse, ExtrapolatedOrderingMatchesGenerateSeqAcrossSizes) {
  for (const i64 n : {4, 5, 6, 8, 12, 16, 24, 40, 64}) {
    const Graph g = models::transformer_stack(n);
    const BlockPlan plan = detect_blocks(g, CostCache(g));
    CollapseOrderingStats stats;
    const Ordering fast = collapsed_generate_seq(g, plan, &stats);
    const Ordering full = generate_seq(g);
    SCOPED_TRACE("N=" + std::to_string(n));
    expect_same_ordering(fast, full);
    // Big stacks must actually take the window fast path (small ones may
    // legitimately fall back — the window would be the whole graph).
    if (n >= 16) {
      EXPECT_TRUE(stats.extrapolated);
      EXPECT_TRUE(stats.certified);
      EXPECT_LT(stats.window_nodes, g.num_nodes());
    }
  }
}

TEST(BlockCollapse, ExtrapolatedOrderingMatchesOnRandomRepeatedBlocks) {
  for (const u64 seed : {1ull, 2ull, 5ull, 9ull}) {
    const Graph g = repeated_block_graph(/*period=*/3, /*repeats=*/9, seed);
    const BlockPlan plan = detect_blocks(g, CostCache(g));
    EXPECT_TRUE(plan.fired()) << "seed " << seed;
    SCOPED_TRACE("seed=" + std::to_string(seed));
    expect_same_ordering(collapsed_generate_seq(g, plan), generate_seq(g));
  }
}

TEST(BlockCollapse, CertifierAcceptsRealSequenceRejectsTampered) {
  const Graph g = models::transformer_stack(8);
  const Ordering real = generate_seq(g);
  const Ordering certified = certify_generate_seq(g, real.seq);
  ASSERT_FALSE(certified.seq.empty());
  expect_same_ordering(certified, real);
  // Any deviation from the greedy's lexicographic choice must be refused.
  std::vector<NodeId> tampered = real.seq;
  std::swap(tampered[10], tampered[20]);
  EXPECT_TRUE(certify_generate_seq(g, tampered).seq.empty());
  tampered = real.seq;
  tampered.pop_back();
  EXPECT_TRUE(certify_generate_seq(g, tampered).seq.empty());
}

// ---------------------------------------------------------------------------
// Full solve: collapsed == cold on repeated-structure and zoo graphs

TEST(BlockCollapse, SolveBitIdenticalOnTransformerStack) {
  const Graph g = models::transformer_stack(16);
  const DpResult cold = find_best_strategy(g, options_for(4));
  const DpResult fast = find_best_strategy(g, options_for(4, true));
  ASSERT_EQ(cold.status, DpStatus::kOk);
  EXPECT_TRUE(fast.collapse_fired);
  EXPECT_EQ(fast.collapse_period, 6);
  expect_same_result(cold, fast);
}

TEST(BlockCollapse, SolveBitIdenticalOnSeededRepeatedBlockGraphs) {
  for (const u64 seed : {1ull, 4ull, 7ull}) {
    const Graph g = repeated_block_graph(/*period=*/2, /*repeats=*/7, seed);
    SCOPED_TRACE("seed=" + std::to_string(seed));
    expect_same_result(find_best_strategy(g, options_for(4)),
                       find_best_strategy(g, options_for(4, true)));
  }
}

TEST(BlockCollapse, SolveUnchangedWhenCollapseCannotFire) {
  // Graphs with nothing to collapse must get the exact cold behavior.
  for (const char* name : {"alexnet", "mlp"}) {
    const Graph g = *models::zoo_graph(name);
    SCOPED_TRACE(name);
    const DpResult fast = find_best_strategy(g, options_for(4, true));
    EXPECT_FALSE(fast.collapse_fired);
    expect_same_result(find_best_strategy(g, options_for(4)), fast);
  }
}

/// The tentpole's proof-by-test across the whole zoo. "Golden" in the name
/// routes it to the `slow` ctest label (tests/CMakeLists.txt): it solves
/// every zoo model twice.
TEST(BlockCollapseGolden, SolveBitIdenticalAcrossZoo) {
  const char* kZoo[] = {"alexnet",  "inception_v3", "rnnlm",
                        "transformer", "densenet",  "resnet50",
                        "vgg16",    "mobilenet_v1", "gnmt",
                        "mlp",      "transformer_stack_24"};
  for (const char* name : kZoo) {
    const Graph g = *models::zoo_graph(name);
    SCOPED_TRACE(name);
    expect_same_result(find_best_strategy(g, options_for(4)),
                       find_best_strategy(g, options_for(4, true)));
  }
}

TEST(BlockCollapse, DeterministicAcrossThreadCounts) {
  const Graph g = models::transformer_stack(16);
  DpResult base;
  for (const i64 threads : {1, 4, 8}) {
    DpOptions opt = options_for(4, true);
    opt.num_threads = threads;
    const DpResult r = find_best_strategy(g, opt);
    ASSERT_EQ(r.status, DpStatus::kOk);
    EXPECT_TRUE(r.collapse_fired);
    if (threads == 1)
      base = r;
    else
      expect_same_result(base, r);
  }
}

// ---------------------------------------------------------------------------
// Delta re-solve: context reuse == cold solve after each supported mutation

TEST(DeltaReSolve, EqualsColdAfterBatchMutation) {
  DpContext context;
  DpOptions with_context = options_for(4, true);
  with_context.context = &context;
  // Prime: the solve stores its ordering/vertex sets in the context.
  const DpResult primed =
      find_best_strategy(models::transformer_stack(8), with_context);
  ASSERT_EQ(primed.status, DpStatus::kOk);
  EXPECT_FALSE(primed.reused_tables);
  // Batch 8 -> 16 changes every extent but no adjacency: delta fires.
  const Graph mutated = models::transformer_stack(8, /*batch=*/16);
  const DpResult delta = find_best_strategy(mutated, with_context);
  EXPECT_TRUE(delta.reused_tables);
  expect_same_result(find_best_strategy(mutated, options_for(4, true)),
                     delta);
}

TEST(DeltaReSolve, EqualsColdAfterDeviceCountMutation) {
  const Graph g = models::transformer_stack(8);
  DpContext context;
  DpOptions with_context = options_for(4, true);
  with_context.context = &context;
  ASSERT_EQ(find_best_strategy(g, with_context).status, DpStatus::kOk);
  // p 4 -> 8 changes the configuration space, not the graph.
  DpOptions p8 = options_for(8, true);
  p8.context = &context;
  const DpResult delta = find_best_strategy(g, p8);
  EXPECT_TRUE(delta.reused_tables);
  expect_same_result(find_best_strategy(g, options_for(8, true)), delta);
}

TEST(DeltaReSolve, EqualsColdAfterBandwidthMutation) {
  const Graph g = models::transformer_stack(8);
  DpContext context;
  DpOptions with_context = options_for(4, true);
  with_context.context = &context;
  ASSERT_EQ(find_best_strategy(g, with_context).status, DpStatus::kOk);
  // New machine: different link bandwidths/compute, same graph.
  DpOptions slow_links = with_context;
  slow_links.cost_params =
      CostParams::for_machine(MachineSpec::rtx2080ti(4));
  const DpResult delta = find_best_strategy(g, slow_links);
  EXPECT_TRUE(delta.reused_tables);
  DpOptions cold = options_for(4, true);
  cold.cost_params = CostParams::for_machine(MachineSpec::rtx2080ti(4));
  expect_same_result(find_best_strategy(g, cold), delta);
}

TEST(DeltaReSolve, AdjacencyChangeInvalidatesContext) {
  DpContext context;
  DpOptions with_context = options_for(4, true);
  with_context.context = &context;
  ASSERT_EQ(find_best_strategy(models::transformer_stack(8), with_context)
                .status,
            DpStatus::kOk);
  // One more block: different adjacency, so the snapshot must NOT be
  // trusted — and the fresh solve replaces it.
  const Graph bigger = models::transformer_stack(9);
  const DpResult miss = find_best_strategy(bigger, with_context);
  EXPECT_FALSE(miss.reused_tables);
  expect_same_result(find_best_strategy(bigger, options_for(4, true)), miss);
  // The replacement snapshot serves the new graph.
  EXPECT_TRUE(find_best_strategy(bigger, with_context).reused_tables);
}

TEST(DeltaReSolve, DeterministicAcrossThreadCounts) {
  const Graph g = models::transformer_stack(8);
  const Graph mutated = models::transformer_stack(8, /*batch=*/16);
  DpResult base;
  for (const i64 threads : {1, 4, 8}) {
    DpContext context;
    DpOptions opt = options_for(4, true);
    opt.context = &context;
    opt.num_threads = threads;
    ASSERT_EQ(find_best_strategy(g, opt).status, DpStatus::kOk);
    const DpResult delta = find_best_strategy(mutated, opt);
    EXPECT_TRUE(delta.reused_tables);
    if (threads == 1)
      base = delta;
    else
      expect_same_result(base, delta);
  }
}

}  // namespace
}  // namespace pase
