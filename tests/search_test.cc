#include <gtest/gtest.h>

#include "core/strategy.h"
#include "models/models.h"
#include "search/baselines.h"
#include "search/brute_force.h"
#include "search/mcmc.h"
#include "test_util.h"

namespace pase {
namespace {

ConfigOptions copts(i64 p) {
  ConfigOptions o;
  o.max_devices = p;
  return o;
}

CostParams cparams() {
  return CostParams::for_machine(MachineSpec::gtx1080ti(8));
}

// ---- make_config

TEST(MakeConfig, SplitsRequestedDims) {
  const Node fc = ops::fully_connected("f", 64, 64, 64);
  const Config c = make_config(fc, {{"n", 4}, {"c", 2}}, 8);
  EXPECT_EQ(c[0], 1);
  EXPECT_EQ(c[1], 4);
  EXPECT_EQ(c[2], 2);
}

TEST(MakeConfig, ClampsToExtentBudgetAndPow2) {
  const Node fc = ops::fully_connected("f", 2, 64, 64);
  EXPECT_EQ(make_config(fc, {{"b", 16}}, 8)[0], 2);   // extent
  EXPECT_EQ(make_config(fc, {{"n", 100}}, 8)[1], 8);  // budget, pow2
  const Config c = make_config(fc, {{"n", 8}, {"c", 8}}, 8);
  EXPECT_EQ(c[1] * c[2], 8);  // budget consumed in order
}

TEST(MakeConfig, SkipsNonSplittableDims) {
  const Node conv = ops::conv2d("c", 8, 8, 8, 8, 8, 3, 3);
  EXPECT_EQ(make_config(conv, {{"h", 4}}, 8)[2], 1);
}

// ---- baselines

TEST(DataParallel, SplitsOnlyBatch) {
  const Graph g = models::alexnet();
  const Strategy phi = data_parallel_strategy(g, 8);
  EXPECT_TRUE(strategy_valid(g, phi, copts(8)));
  for (const Node& n : g.nodes()) {
    const Config& c = phi[static_cast<size_t>(n.id)];
    const i64 b = n.space.find("b");
    for (i64 d = 0; d < c.rank(); ++d)
      EXPECT_EQ(c[d], d == b ? 8 : 1) << n.name;
  }
}

TEST(DataParallel, ClampsToBatchExtent) {
  const Graph g = models::mlp(4, {16, 16});
  const Strategy phi = data_parallel_strategy(g, 64);
  EXPECT_EQ(phi[0][0], 4);
}

TEST(Owt, ConvDataParallelFcParameterParallel) {
  const Graph g = models::alexnet();
  const Strategy phi = owt_strategy(g, 8);
  EXPECT_TRUE(strategy_valid(g, phi, copts(8)));
  for (const Node& n : g.nodes()) {
    const Config& c = phi[static_cast<size_t>(n.id)];
    if (n.kind == OpKind::kConv2D) {
      EXPECT_EQ(c[0], 8) << n.name;  // batch split
    } else if (n.kind == OpKind::kFullyConnected) {
      EXPECT_EQ(c[0], 1) << n.name;
      EXPECT_EQ(c[1], 8) << n.name;  // out-channel split only
      EXPECT_EQ(c[2], 1) << n.name;
    }
  }
}

TEST(RnnExpert, PipelineAcrossLayersDataAcrossRest) {
  const Graph g = models::rnnlm();
  const Strategy phi = rnn_expert_strategy(g, 8);
  EXPECT_TRUE(strategy_valid(g, phi, copts(8)));
  for (const Node& n : g.nodes()) {
    const Config& c = phi[static_cast<size_t>(n.id)];
    if (n.kind == OpKind::kLSTM) {
      EXPECT_EQ(c[0], 2);  // both LSTM layers pipelined
      EXPECT_EQ(c[1], 4);  // batch split across the rest
    }
  }
}

TEST(TransformerExpert, BatchTimesModelSplit) {
  const Graph g = models::transformer();
  const Strategy phi = transformer_expert_strategy(g, 32);
  EXPECT_TRUE(strategy_valid(g, phi, copts(32)));
  for (const Node& n : g.nodes()) {
    const Config& c = phi[static_cast<size_t>(n.id)];
    if (n.kind == OpKind::kAttention) {
      EXPECT_EQ(c[0], 8);  // m = p/4
      EXPECT_EQ(c[2], 4);  // heads n-way
    }
    if (n.kind == OpKind::kFeedForward) {
      EXPECT_EQ(c[0], 8);
      EXPECT_EQ(c[3], 4);  // hidden n-way
    }
  }
}

TEST(TransformerExpert, SmallPUsesNEquals2) {
  const Graph g = models::transformer();
  const Strategy phi = transformer_expert_strategy(g, 4);
  EXPECT_TRUE(strategy_valid(g, phi, copts(4)));
}

TEST(ExpertDispatch, PicksByOperatorMix) {
  // LSTM graphs use the RNN expert; attention graphs the Mesh-TF hybrid;
  // conv graphs OWT; everything else data parallelism.
  const Graph rnn = models::rnnlm();
  const Strategy r = expert_strategy(rnn, 8);
  EXPECT_EQ(r[1][0], 2);  // LSTM layer dim split

  const Graph cnn = models::alexnet();
  const Strategy c = expert_strategy(cnn, 8);
  EXPECT_EQ(c[8][1], 8);  // FC1 out-channel split (OWT)

  const Graph mlp = models::mlp(64, {64, 64});
  const Strategy m = expert_strategy(mlp, 8);
  EXPECT_EQ(m[0][0], 8);  // plain data parallelism
}

// ---- brute force

TEST(BruteForce, EvaluatesEveryStrategy) {
  const Graph g = models::mlp(16, {32, 16});
  const auto r = brute_force_search(g, copts(4), cparams());
  ASSERT_TRUE(r.has_value());
  const ConfigCache cache(g, copts(4));
  u64 expected = 1;
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    expected *= cache.at(v).size();
  EXPECT_EQ(r->strategies_evaluated, expected);
}

TEST(BruteForce, RespectsCap) {
  const Graph g = models::mlp(16, {32, 32, 32, 16});
  EXPECT_FALSE(brute_force_search(g, copts(8), cparams(), 10).has_value());
}

TEST(BruteForce, BestStrategyAchievesBestCost) {
  const Graph g = testing::random_graph(4, 1, 11);
  const auto r = brute_force_search(g, copts(4), cparams());
  ASSERT_TRUE(r.has_value());
  const CostModel cm(g, cparams());
  EXPECT_DOUBLE_EQ(cm.total_cost(r->best_strategy), r->best_cost);
}

// ---- MCMC

McmcOptions quick_mcmc(u64 seed, bool full_eval = false) {
  McmcOptions o;
  o.max_iterations = 5000;
  o.min_iterations = 500;
  o.seed = seed;
  o.full_evaluation = full_eval;
  return o;
}

TEST(Mcmc, NeverWorseThanInitial) {
  const Graph g = models::alexnet();
  const Strategy init = data_parallel_strategy(g, 8);
  const CostModel cm(g, cparams());
  const McmcResult r =
      mcmc_search(g, copts(8), cparams(), init, quick_mcmc(1));
  EXPECT_LE(r.best_cost, cm.total_cost(init) * (1 + 1e-9));
}

TEST(Mcmc, DeterministicForSeed) {
  const Graph g = models::alexnet();
  const Strategy init = expert_strategy(g, 8);
  const McmcResult a =
      mcmc_search(g, copts(8), cparams(), init, quick_mcmc(7));
  const McmcResult b =
      mcmc_search(g, copts(8), cparams(), init, quick_mcmc(7));
  EXPECT_EQ(a.best_cost, b.best_cost);
  EXPECT_EQ(a.iterations, b.iterations);
}

TEST(Mcmc, BestCostMatchesBestStrategy) {
  const Graph g = models::alexnet();
  const McmcResult r = mcmc_search(g, copts(8), cparams(),
                                   data_parallel_strategy(g, 8),
                                   quick_mcmc(3));
  const CostModel cm(g, cparams());
  EXPECT_NEAR(cm.total_cost(r.best_strategy), r.best_cost,
              1e-9 * r.best_cost);
}

TEST(Mcmc, DeltaAndFullEvaluationAgreeOnBestCostSemantics) {
  // Different walks (full eval re-ranks identically but timing differs);
  // both must return internally consistent results.
  const Graph g = models::mlp(64, {128, 128, 64});
  const Strategy init = data_parallel_strategy(g, 8);
  const CostModel cm(g, cparams());
  for (bool full : {false, true}) {
    const McmcResult r =
        mcmc_search(g, copts(8), cparams(), init, quick_mcmc(5, full));
    EXPECT_NEAR(cm.total_cost(r.best_strategy), r.best_cost,
                1e-9 * r.best_cost);
    EXPECT_TRUE(strategy_valid(g, r.best_strategy, copts(8)));
  }
}

TEST(Mcmc, RespectsIterationCap) {
  const Graph g = models::alexnet();
  McmcOptions o = quick_mcmc(2);
  o.max_iterations = 100;
  o.stop_half_no_improvement = false;
  const McmcResult r =
      mcmc_search(g, copts(8), cparams(), expert_strategy(g, 8), o);
  EXPECT_EQ(r.iterations, 100u);
}

TEST(Mcmc, HalfTimeStopTerminatesEarly) {
  const Graph g = models::mlp(16, {32, 16});
  McmcOptions o;
  o.max_iterations = 1000000;
  o.min_iterations = 200;
  o.seed = 4;
  const McmcResult r = mcmc_search(g, copts(2), cparams(),
                                   data_parallel_strategy(g, 2), o);
  EXPECT_LT(r.iterations, o.max_iterations);
}

TEST(Mcmc, BoundedByOptimumAndInitial) {
  // MCMC can get stuck in local minima (the FlexFlow weakness the paper
  // §VI points out), so it is only guaranteed to land between the global
  // optimum and its initial candidate.
  const Graph g = models::mlp(16, {32, 16});
  const auto bf = brute_force_search(g, copts(4), cparams());
  ASSERT_TRUE(bf.has_value());
  const CostModel cm(g, cparams());
  const Strategy init = data_parallel_strategy(g, 4);
  McmcOptions o = quick_mcmc(6);
  o.max_iterations = 20000;
  const McmcResult r = mcmc_search(g, copts(4), cparams(), init, o);
  EXPECT_GE(r.best_cost, bf->best_cost * (1 - 1e-9));
  EXPECT_LE(r.best_cost, cm.total_cost(init) * (1 + 1e-9));
}

TEST(Mcmc, HighTemperatureEscapesLocalMinimaOnTinyGraph) {
  const Graph g = models::mlp(16, {32, 16});
  const auto bf = brute_force_search(g, copts(4), cparams());
  ASSERT_TRUE(bf.has_value());
  McmcOptions o = quick_mcmc(6);
  o.max_iterations = 50000;
  o.stop_half_no_improvement = false;
  o.temperature_fraction = 0.5;  // hot walk ~ random sampling
  const McmcResult r = mcmc_search(g, copts(4), cparams(),
                                   data_parallel_strategy(g, 4), o);
  EXPECT_NEAR(r.best_cost, bf->best_cost, 1e-6 * bf->best_cost);
}

}  // namespace
}  // namespace pase
