// Tests for the strategy-serving subsystem (src/serve): the hardened JSON
// layer, the request/response protocol, the verified result cache, seeded
// fault injection, and the ServeCore robustness invariants (deadlines,
// admission control, watchdog, cross-request determinism). ServeCore is
// driven directly through handle_line — no sockets — so every scenario
// here is an in-process unit test.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <thread>
#include <vector>

#include "core/dp_solver.h"
#include "cost/machine.h"
#include "io/strategy_io.h"
#include "mini_json.h"
#include "models/models.h"
#include "serve/inject.h"
#include "serve/json.h"
#include "serve/protocol.h"
#include "serve/result_cache.h"
#include "serve/server.h"

namespace pase::serve {
namespace {

// ---------------------------------------------------------------------------
// JSON layer

TEST(ServeJson, WriterIsCanonicalAndCrossParses) {
  Json obj = Json::make_object();
  obj.object["zeta"] = Json::make_number(1.5);
  obj.object["alpha"] = Json::make_string("a\"b\nc");
  obj.object["count"] = Json::make_number(42);
  obj.object["flag"] = Json::make_bool(true);
  Json arr = Json::make_array();
  arr.array.push_back(Json::make_number(1));
  arr.array.push_back(Json::make_null());
  obj.object["list"] = std::move(arr);

  const std::string text = write_json(obj);
  // Keys sorted, no whitespace, integral doubles rendered as integers.
  EXPECT_EQ(text,
            "{\"alpha\":\"a\\\"b\\nc\",\"count\":42,\"flag\":true,"
            "\"list\":[1,null],\"zeta\":1.5}");

  // Round-trips through our own parser...
  const auto own = parse_json(text);
  ASSERT_TRUE(own.has_value());
  EXPECT_EQ(write_json(*own), text);
  // ...and through the independent test-side reader.
  const auto mini = pase::testing::JsonParser::parse(text);
  ASSERT_TRUE(mini.has_value());
  EXPECT_EQ(mini->get("alpha")->string, "a\"b\nc");
  EXPECT_EQ(mini->get("count")->number, 42.0);
  EXPECT_EQ(mini->get("list")->array.size(), 2u);
}

TEST(ServeJson, ParserRejectsHostileInput) {
  std::string error;
  // Trailing garbage.
  EXPECT_FALSE(parse_json("{} {}", &error).has_value());
  // Unterminated string.
  EXPECT_FALSE(parse_json("\"abc", &error).has_value());
  // Depth bomb: 100 nested arrays exceeds the 64-level cap.
  std::string bomb(100, '[');
  bomb += std::string(100, ']');
  EXPECT_FALSE(parse_json(bomb, &error).has_value());
  EXPECT_NE(error.find("nest"), std::string::npos);
  // Non-finite numbers and bare words.
  EXPECT_FALSE(parse_json("nan", &error).has_value());
  EXPECT_FALSE(parse_json("{\"a\":inf}", &error).has_value());
  // Errors carry a byte offset.
  EXPECT_FALSE(parse_json("{\"a\": }", &error).has_value());
  EXPECT_NE(error.find("byte"), std::string::npos);
  // 64 levels exactly is accepted.
  std::string ok(64, '[');
  ok += std::string(64, ']');
  EXPECT_TRUE(parse_json(ok).has_value());
}

// ---------------------------------------------------------------------------
// Protocol

TEST(ServeProtocol, ParsesSolveWithDefaults) {
  const auto r = parse_request("{\"op\":\"solve\",\"zoo\":\"alexnet\"}");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.request.op, ServeRequest::Op::kSolve);
  EXPECT_EQ(r.request.zoo, "alexnet");
  EXPECT_EQ(r.request.machine, "1080ti");
  EXPECT_EQ(r.request.devices, 8);
  EXPECT_EQ(r.request.deadline_ms, 0.0);
  EXPECT_EQ(r.request.beam_width, 256);
}

TEST(ServeProtocol, RejectsMalformedRequests) {
  EXPECT_FALSE(parse_request("not json").ok);
  EXPECT_FALSE(parse_request("[1,2]").ok);
  EXPECT_FALSE(parse_request("{\"zoo\":\"alexnet\"}").ok);  // missing op
  EXPECT_FALSE(parse_request("{\"op\":\"dance\"}").ok);     // unknown op
  // A solve needs exactly one model source.
  EXPECT_FALSE(parse_request("{\"op\":\"solve\"}").ok);
  EXPECT_FALSE(
      parse_request(
          "{\"op\":\"solve\",\"zoo\":\"a\",\"model\":\"pase-model v1\"}")
          .ok);
  // Range-checked numerics.
  EXPECT_FALSE(
      parse_request("{\"op\":\"solve\",\"zoo\":\"a\",\"devices\":0}").ok);
  EXPECT_FALSE(
      parse_request("{\"op\":\"solve\",\"zoo\":\"a\",\"devices\":2.5}").ok);
  EXPECT_FALSE(
      parse_request("{\"op\":\"solve\",\"zoo\":\"a\",\"deadline_ms\":-1}")
          .ok);
}

TEST(ServeProtocol, InlineMachineSpecIsCanonicalizedAndValidated) {
  // Two spellings of one spec — different key order and whitespace — must
  // canonicalize to the same machine_spec_json (the cache/dedupe key).
  const auto a = parse_request(
      "{\"op\":\"solve\",\"zoo\":\"mlp\",\"machine_spec\":"
      "{\"devices\":4,\"peak_flops\":11.3e12,\"link_bandwidth\":7e9}}");
  const auto b = parse_request(
      "{\"op\":\"solve\",\"zoo\":\"mlp\",  \"machine_spec\": "
      "{\"link_bandwidth\":7e9, \"peak_flops\":11.3e12, \"devices\":4}}");
  ASSERT_TRUE(a.ok) << a.error;
  ASSERT_TRUE(b.ok) << b.error;
  EXPECT_FALSE(a.request.machine_spec_json.empty());
  EXPECT_EQ(a.request.machine_spec_json, b.request.machine_spec_json);
  // "devices" defaults to the spec's count.
  EXPECT_EQ(a.request.devices, 4);

  // Exclusive with "machine".
  const auto both = parse_request(
      "{\"op\":\"solve\",\"zoo\":\"mlp\",\"machine\":\"2080ti\","
      "\"machine_spec\":{\"devices\":4,\"peak_flops\":1e12,"
      "\"link_bandwidth\":1e9}}");
  EXPECT_FALSE(both.ok);
  EXPECT_NE(both.error.find("at most one"), std::string::npos);

  // An explicit "devices" must match the spec's count.
  const auto mismatch = parse_request(
      "{\"op\":\"solve\",\"zoo\":\"mlp\",\"devices\":8,\"machine_spec\":"
      "{\"devices\":4,\"peak_flops\":1e12,\"link_bandwidth\":1e9}}");
  EXPECT_FALSE(mismatch.ok);
  EXPECT_NE(mismatch.error.find("does not match"), std::string::npos);

  // Spec validation errors surface as the parse error.
  const auto bad = parse_request(
      "{\"op\":\"solve\",\"zoo\":\"mlp\",\"machine_spec\":"
      "{\"devices\":4,\"peak_flops\":1e12}}");
  EXPECT_FALSE(bad.ok);
  EXPECT_NE(bad.error.find("no link given"), std::string::npos);
  EXPECT_FALSE(
      parse_request("{\"op\":\"solve\",\"zoo\":\"mlp\",\"machine_spec\":7}")
          .ok);
}

TEST(ServeProtocol, ResponseLineIsCanonical) {
  ServeResponse resp;
  resp.code = ResponseCode::kShed;
  resp.id = "q1";
  resp.reason = "queue at capacity";
  const std::string line = resp.to_line();
  EXPECT_EQ(line,
            "{\"code\":\"shed\",\"id\":\"q1\",\"reason\":\"queue at "
            "capacity\"}");
  // Strategy responses carry cost; reason-free ok responses omit reason.
  ServeResponse ok;
  ok.code = ResponseCode::kOk;
  ok.strategy = "pase-strategy v1\n";
  ok.cost = 2.0;
  const auto parsed = parse_json(ok.to_line());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->get_string("code"), "ok");
  EXPECT_EQ(parsed->get_number("cost"), 2.0);
  EXPECT_FALSE(parsed->get("reason"));
}

// ---------------------------------------------------------------------------
// Fault-injection spec

TEST(ServeInject, ParseAndRoundTrip) {
  const auto r =
      parse_inject_spec("slow=0.3:0.05,stall=0.05:2,poison=0.2");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.spec.slow_rate, 0.3);
  EXPECT_EQ(r.spec.slow_seconds, 0.05);
  EXPECT_EQ(r.spec.stall_rate, 0.05);
  EXPECT_EQ(r.spec.stall_seconds, 2.0);
  EXPECT_EQ(r.spec.poison_rate, 0.2);
  EXPECT_EQ(r.spec.to_string(), "slow=0.3:0.05,stall=0.05:2,poison=0.2");

  EXPECT_FALSE(parse_inject_spec("slow=0.3").ok);      // missing seconds
  EXPECT_FALSE(parse_inject_spec("poison=1.5").ok);    // rate out of range
  EXPECT_FALSE(parse_inject_spec("flood=0.1").ok);     // unknown clause
  EXPECT_FALSE(parse_inject_spec("slow").ok);          // no '='
  EXPECT_TRUE(parse_inject_spec("").ok);               // empty = no faults
}

TEST(ServeInject, DrawsAreDeterministicPerSeed) {
  InjectSpec spec;
  spec.slow_rate = 0.5;
  spec.slow_seconds = 0.1;
  spec.stall_rate = 0.2;
  spec.stall_seconds = 1.0;
  spec.poison_rate = 0.3;
  for (u64 k = 0; k < 64; ++k) {
    const InjectDraw a = draw_injections(spec, 7, k);
    const InjectDraw b = draw_injections(spec, 7, k);
    EXPECT_EQ(a.slow, b.slow);
    EXPECT_EQ(a.stall, b.stall);
    EXPECT_EQ(a.poison, b.poison);
  }
  // Extreme rates are exact, and a zero spec never draws.
  InjectSpec always;
  always.slow_rate = 1.0;
  always.slow_seconds = 0.1;
  for (u64 k = 0; k < 16; ++k) {
    EXPECT_TRUE(draw_injections(always, 1, k).slow);
    EXPECT_FALSE(draw_injections(always, 1, k).stall);
    const InjectDraw none = draw_injections(InjectSpec{}, 1, k);
    EXPECT_FALSE(none.slow || none.stall || none.poison);
  }
}

// ---------------------------------------------------------------------------
// Result cache

TEST(ServeResultCache, GraphSignatureIgnoresNamesOnly) {
  const Graph a = models::mlp(32, {64, 32});
  const Graph b = models::mlp(32, {64, 32});
  EXPECT_EQ(graph_signature(a), graph_signature(b));
  // A different shape changes the signature...
  const Graph c = models::mlp(32, {64, 16});
  EXPECT_NE(graph_signature(a), graph_signature(c));
  // ...and so does a different batch.
  const Graph d = models::mlp(16, {64, 32});
  EXPECT_NE(graph_signature(a), graph_signature(d));
}

TEST(ServeResultCache, LruEvictionAndCorruption) {
  ResultCache cache(2);
  ResultCache::Entry e;
  e.status = DpStatus::kOk;
  e.best_cost = 1.0;
  e.check_cost = 1.0;
  e.strategy.push_back(Config{});
  cache.store(1, e);
  cache.store(2, e);
  ResultCache::Entry out;
  ASSERT_TRUE(cache.lookup(1, &out));  // touch 1: now MRU
  cache.store(3, e);                   // evicts 2 (LRU)
  EXPECT_FALSE(cache.lookup(2, &out));
  EXPECT_TRUE(cache.lookup(1, &out));
  EXPECT_TRUE(cache.lookup(3, &out));
  EXPECT_EQ(cache.size(), 2);

  // corrupt() flips check_cost bits but leaves it finite — the signal
  // verify-on-hit trips on.
  cache.corrupt(3);
  ASSERT_TRUE(cache.lookup(3, &out));
  EXPECT_NE(out.check_cost, e.check_cost);
  EXPECT_TRUE(std::isfinite(out.check_cost));

  cache.erase(3);
  EXPECT_FALSE(cache.lookup(3, &out));
}

TEST(ServeResultCache, CacheabilityFollowsTripCause) {
  using TC = DpResult::TripCause;
  EXPECT_TRUE(ResultCache::cacheable(DpStatus::kOk, TC::kNone));
  EXPECT_TRUE(ResultCache::cacheable(DpStatus::kInfeasible, TC::kNone));
  // Structural guard trips are pure functions of (graph, options): cache.
  EXPECT_TRUE(ResultCache::cacheable(DpStatus::kDegraded, TC::kTableGuard));
  EXPECT_TRUE(ResultCache::cacheable(DpStatus::kDegraded, TC::kWorkGuard));
  // Timing-dependent outcomes must never be cached.
  EXPECT_FALSE(ResultCache::cacheable(DpStatus::kDegraded, TC::kDeadline));
  EXPECT_FALSE(ResultCache::cacheable(DpStatus::kDegraded, TC::kCancelled));
  EXPECT_FALSE(ResultCache::cacheable(DpStatus::kOutOfMemory, TC::kDeadline));
}

// ---------------------------------------------------------------------------
// ServeCore end to end (no sockets)

ServeOptions quiet_options() {
  ServeOptions o;
  o.workers = 2;
  o.default_deadline_ms = 30000;  // tests control timing explicitly
  o.max_deadline_ms = 60000;
  o.watchdog_grace_ms = 60000;    // watchdog effectively off by default
  return o;
}

std::string solve_line(const std::string& zoo, i64 devices,
                       const std::string& extra = "") {
  return "{\"op\":\"solve\",\"zoo\":\"" + zoo + "\",\"devices\":" +
         std::to_string(devices) + extra + "}";
}

TEST(ServeCore, SolveMatchesDirectSolverBitExactly) {
  ServeCore core(quiet_options());
  const auto parsed = parse_json(core.handle_line(solve_line("mlp", 4)));
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->get_string("code"), "ok");

  // The same query through the solver directly.
  const Graph graph = models::mlp(32, {256, 256, 128, 64});
  DpOptions options;
  options.config_options.max_devices = 4;
  options.cost_params = CostParams::for_machine(MachineSpec::gtx1080ti(4),
                                                CommModelKind::kSimple);
  options.degraded_fallback = true;
  const DpResult direct = find_best_strategy(graph, options);
  ASSERT_EQ(direct.status, DpStatus::kOk);
  EXPECT_EQ(parsed->get_number("cost"), direct.best_cost);
  EXPECT_EQ(parsed->get_string("strategy"),
            write_strategy(graph, direct.strategy));
}

TEST(ServeCore, RepeatQueryHitsCacheByteIdentically) {
  ServeCore core(quiet_options());
  const std::string line = solve_line("mlp", 4);
  const auto first = parse_json(core.handle_line(line));
  const auto second = parse_json(core.handle_line(line));
  ASSERT_TRUE(first.has_value() && second.has_value());
  EXPECT_EQ(first->get_string("code"), "ok");
  EXPECT_EQ(first->get_string("cache"), "miss");
  EXPECT_EQ(second->get_string("code"), "ok");
  EXPECT_EQ(second->get_string("cache"), "hit");
  // The served strategy and cost are byte/bit-identical across the cold
  // solve and the verified cache hit.
  EXPECT_EQ(first->get_string("strategy"), second->get_string("strategy"));
  EXPECT_EQ(first->get_number("cost"), second->get_number("cost"));
  EXPECT_EQ(core.metrics().counter("serve.cache.hits"), 1u);
  EXPECT_EQ(core.metrics().counter("serve.cache.misses"), 1u);
}

TEST(ServeCore, InlineUniformSpecMatchesNamedMachineBitExactly) {
  // A machine_spec spelling the 1080Ti preset's numbers must serve the
  // same cost and strategy bytes as the named machine (the degenerate-
  // uniform contract, end to end through the serve path).
  ServeCore core(quiet_options());
  const auto named = parse_json(core.handle_line(solve_line("mlp", 4)));
  const auto spec = parse_json(core.handle_line(solve_line(
      "mlp", 4,
      ",\"machine_spec\":{\"name\":\"1080Ti\",\"devices\":4,"
      "\"devices_per_node\":8,\"peak_flops\":11.3e12,"
      "\"intra_node_bandwidth\":12e9,\"inter_node_bandwidth\":7e9,"
      "\"link_bandwidth\":7e9,\"gradient_comm_discount\":0.15}")));
  ASSERT_TRUE(named.has_value() && spec.has_value());
  ASSERT_EQ(named->get_string("code"), "ok");
  ASSERT_EQ(spec->get_string("code"), "ok");
  EXPECT_EQ(named->get_number("cost"), spec->get_number("cost"));
  EXPECT_EQ(named->get_string("strategy"), spec->get_string("strategy"));
  // Distinct result-cache keys (the named machine vs the spec JSON), so
  // the spec solve was a miss, not a hit on the named entry.
  EXPECT_EQ(spec->get_string("cache"), "miss");
  // Both solves rolled up under the same machine signature.
  EXPECT_EQ(core.metrics().counter("serve.machine.1080Ti/p4"), 2u);
}

TEST(ServeCore, EquivalentSpecSpellingsShareOneCacheEntry) {
  ServeCore core(quiet_options());
  const char* spec_a =
      ",\"machine_spec\":{\"devices\":4,\"peak_flops\":11.3e12,"
      "\"link_bandwidth\":7e9}";
  // Same spec, different key order: canonicalization maps both requests
  // to one result-cache key.
  const char* spec_b =
      ",\"machine_spec\":{\"link_bandwidth\":7e9,\"devices\":4,"
      "\"peak_flops\":11.3e12}";
  const auto first = parse_json(core.handle_line(solve_line("mlp", 4, spec_a)));
  const auto second =
      parse_json(core.handle_line(solve_line("mlp", 4, spec_b)));
  ASSERT_TRUE(first.has_value() && second.has_value());
  EXPECT_EQ(first->get_string("cache"), "miss");
  EXPECT_EQ(second->get_string("cache"), "hit");
  EXPECT_EQ(first->get_string("strategy"), second->get_string("strategy"));
}

TEST(ServeCore, HeterogeneousSpecSolvesAndLogsHetSignature) {
  ServeOptions options = quiet_options();
  ServeCore core(options);
  const auto r = parse_json(core.handle_line(solve_line(
      "mlp", 4,
      ",\"machine_spec\":{\"name\":\"Pod\",\"devices\":4,"
      "\"device_flops\":[2e12,2e12,1e12,1e12],\"link_bandwidth\":7e9}")));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->get_string("code"), "ok");
  EXPECT_EQ(core.metrics().counter("serve.machine.Pod/p4/het"), 1u);
  // The event-log line carries the same signature.
  const std::vector<std::string> tail = core.event_log().tail();
  ASSERT_FALSE(tail.empty());
  const auto ev = parse_json(tail.back());
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->get_string("machine"), "Pod/p4/het");
  // Named hetero presets route the same way.
  const auto pod =
      parse_json(core.handle_line(solve_line(
          "mlp", 8, ",\"machine\":\"mixed_pod\"")));
  ASSERT_TRUE(pod.has_value());
  EXPECT_EQ(pod->get_string("code"), "ok");
  EXPECT_EQ(core.metrics().counter("serve.machine.MixedPod/p8/het"), 1u);
}

TEST(ServeCore, MalformedModelAndUnknownNamesAreClassified) {
  ServeOptions options = quiet_options();
  options.max_model_nodes = 2;
  ServeCore core(options);
  // Unknown zoo model.
  auto r = parse_json(core.handle_line(solve_line("skynet", 4)));
  EXPECT_EQ(r->get_string("code"), "malformed");
  // Unknown machine.
  r = parse_json(core.handle_line(
      solve_line("mlp", 4, ",\"machine\":\"abacus\"")));
  EXPECT_EQ(r->get_string("code"), "malformed");
  // Inline model whose dimension product overflows 64-bit table sizing.
  r = parse_json(core.handle_line(
      "{\"op\":\"solve\",\"model\":\"pase-model v1\\nnode a fc "
      "n=2147483648 c=2147483648\\n\"}"));
  EXPECT_EQ(r->get_string("code"), "malformed");
  EXPECT_NE(r->get_string("reason").find("overflow"), std::string::npos);
  // Inline model over the node budget (3 nodes > max_model_nodes = 2).
  r = parse_json(core.handle_line(
      "{\"op\":\"solve\",\"model\":\"pase-model v1\\nbatch 8\\n"
      "node a fc n=8 c=8\\nnode b fc n=8 c=8\\nnode c fc n=8 c=8\\n"
      "edge a b b:b n:c\\nedge b c b:b n:c\\n\"}"));
  EXPECT_EQ(r->get_string("code"), "malformed");
  EXPECT_NE(r->get_string("reason").find("maximum"), std::string::npos);
  // Malformed requests never reach the solver.
  EXPECT_EQ(core.metrics().counter("serve.responses.malformed"), 4u);
  EXPECT_EQ(core.metrics().counter("serve.cache.misses"), 0u);
}

TEST(ServeCore, PingMetricsAndShutdownOps) {
  ServeCore core(quiet_options());
  auto r = parse_json(core.handle_line("{\"op\":\"ping\",\"id\":\"p\"}"));
  EXPECT_EQ(r->get_string("code"), "ok");
  EXPECT_EQ(r->get_string("id"), "p");

  core.handle_line(solve_line("mlp", 4));
  r = parse_json(core.handle_line("{\"op\":\"metrics\"}"));
  const Json* metrics = r->get("metrics");
  ASSERT_NE(metrics, nullptr);
  const Json* counters = metrics->get("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_GE(counters->get_number("serve.requests"), 2.0);
  EXPECT_EQ(counters->get_number("serve.responses.ok"), 2.0);

  EXPECT_FALSE(core.shutdown_requested());
  r = parse_json(core.handle_line("{\"op\":\"shutdown\"}"));
  EXPECT_EQ(r->get_string("code"), "ok");
  EXPECT_TRUE(core.shutdown_requested());
}

TEST(ServeCore, InjectedSlowRequestDegradesDeterministically) {
  ServeOptions options = quiet_options();
  options.default_deadline_ms = 100;  // budget far below the injected sleep
  options.inject.slow_rate = 1.0;
  options.inject.slow_seconds = 0.25;
  ServeCore core(options);
  const auto r = parse_json(core.handle_line(solve_line("mlp", 4)));
  // The sleep consumed the whole budget, so the solve lands on the beam
  // fallback: a valid strategy, labeled degraded — never an error.
  EXPECT_EQ(r->get_string("code"), "degraded");
  EXPECT_FALSE(r->get_string("strategy").empty());
  EXPECT_NE(r->get_string("reason").find("deadline"), std::string::npos);
  EXPECT_EQ(core.metrics().counter("serve.inject.slow"), 1u);
  EXPECT_EQ(core.watchdog_kills(), 0u);
  // Deadline-tripped results are timing-dependent: never cached.
  const auto again = parse_json(core.handle_line(solve_line("mlp", 4)));
  EXPECT_EQ(again->get_string("cache"), "miss");
}

TEST(ServeCore, InjectedStallIsKilledByWatchdog) {
  ServeOptions options = quiet_options();
  options.default_deadline_ms = 50;
  options.watchdog_grace_ms = 50;
  options.inject.stall_rate = 1.0;
  options.inject.stall_seconds = 30.0;  // far beyond any budget
  ServeCore core(options);
  const auto r = parse_json(core.handle_line(solve_line("mlp", 4)));
  EXPECT_EQ(r->get_string("code"), "error");
  EXPECT_NE(r->get_string("reason").find("watchdog"), std::string::npos);
  EXPECT_EQ(core.watchdog_kills(), 1u);
  EXPECT_EQ(core.metrics().counter("serve.watchdog.kills"), 1u);
  EXPECT_EQ(core.metrics().counter("serve.inject.stall"), 1u);
}

TEST(ServeCore, PoisonedCacheEntryIsDetectedAndResolved) {
  ServeOptions options = quiet_options();
  options.inject.poison_rate = 1.0;
  ServeCore core(options);
  const auto first = parse_json(core.handle_line(solve_line("mlp", 4)));
  EXPECT_EQ(first->get_string("code"), "ok");
  // The stored entry was corrupted after the solve; the next lookup
  // verifies, detects the mismatch, drops the entry and re-solves.
  const auto second = parse_json(core.handle_line(solve_line("mlp", 4)));
  EXPECT_EQ(second->get_string("code"), "ok");
  EXPECT_EQ(second->get_string("cache"), "poisoned");
  EXPECT_EQ(core.metrics().counter("serve.cache.poison_detected"), 1u);
  // The recovered answer is still bit-identical to the original.
  EXPECT_EQ(first->get_string("strategy"), second->get_string("strategy"));
  EXPECT_EQ(first->get_number("cost"), second->get_number("cost"));
}

TEST(ServeCore, OverloadShedsExplicitlyWithoutDeadlock) {
  ServeOptions options = quiet_options();
  options.workers = 1;
  options.queue_depth = 1;
  options.inject.slow_rate = 1.0;  // hold the admitted solve open
  options.inject.slow_seconds = 0.4;
  ServeCore core(options);

  std::string slow_response;
  std::thread holder([&] {
    slow_response = core.handle_line(solve_line("mlp", 4));
  });
  // Wait until the holder's solve is admitted, then overflow the queue
  // with a *different* query (same-key requests would dedup, not shed).
  std::string shed_response;
  for (int i = 0; i < 200; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    shed_response = core.handle_line(solve_line("mlp", 2));
    const auto r = parse_json(shed_response);
    if (r->get_string("code") == "shed") break;
    if (r->get_string("cache") == "hit") break;  // holder already finished
  }
  holder.join();
  const auto shed = parse_json(shed_response);
  ASSERT_TRUE(shed.has_value());
  if (shed->get_string("code") == "shed") {
    EXPECT_NE(shed->get_string("reason").find("capacity"),
              std::string::npos);
    EXPECT_GE(core.metrics().counter("serve.responses.shed"), 1u);
  }
  // The held solve still completed and was classified.
  const auto slow = parse_json(slow_response);
  EXPECT_EQ(slow->get_string("code"), "ok");
}

TEST(ServeCore, DuplicateInFlightQueriesShareOneSolve) {
  ServeOptions options = quiet_options();
  options.workers = 2;
  options.queue_depth = 1;         // only one *admission* slot...
  options.inject.slow_rate = 1.0;  // ...held open long enough to join
  options.inject.slow_seconds = 0.3;
  ServeCore core(options);

  const std::string line = solve_line("mlp", 4);
  std::string r1, r2;
  std::thread a([&] { r1 = core.handle_line(line); });
  // Give the leader a head start well inside its 300ms injected sleep, so
  // the duplicate reliably finds the flight still open.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::thread b([&] { r2 = core.handle_line(line); });
  a.join();
  b.join();
  const auto p1 = parse_json(r1);
  const auto p2 = parse_json(r2);
  // Both were answered (one led, one joined — neither was shed despite
  // queue_depth = 1) and agree byte-for-byte on the strategy.
  EXPECT_EQ(p1->get_string("code"), "ok");
  EXPECT_EQ(p2->get_string("code"), "ok");
  EXPECT_EQ(p1->get_string("strategy"), p2->get_string("strategy"));
  EXPECT_EQ(core.metrics().counter("serve.dedup.joined"), 1u);
  EXPECT_EQ(core.metrics().counter("serve.inject.slow"), 1u);
}

// ---------------------------------------------------------------------------
// Observability of the serve path (DESIGN.md §11): event log, rolling SLO,
// request-scoped traces. All suites here keep the Serve prefix so they ride
// the TSan lane in tools/check.sh.

TEST(ServeObs, EventLogLineIsCanonicalWithExactSchema) {
  ServeCore core(quiet_options());
  core.handle_line(solve_line("mlp", 4, ",\"id\":\"q1\""));
  core.handle_line(solve_line("mlp", 4, ",\"id\":\"q2\""));
  const std::vector<std::string> tail = core.event_log().tail();
  ASSERT_EQ(tail.size(), 2u);

  // Canonical bytes: the line round-trips through the serve parser and
  // writer unchanged, and the independent test-side reader agrees.
  const auto own = parse_json(tail[0]);
  ASSERT_TRUE(own.has_value());
  EXPECT_EQ(write_json(*own), tail[0]);
  const auto miss = pase::testing::JsonParser::parse(tail[0]);
  ASSERT_TRUE(miss.has_value());

  // Cold solve: the full schema, nothing more.
  std::vector<std::string> keys;
  for (const auto& [k, v] : miss->object) keys.push_back(k);
  const std::vector<std::string> want = {
      "cache",    "code", "deadline_ms",  "id",  "machine",
      "op",       "queue_ms", "remaining_ms", "seq", "solve_ms",
      "total_ms"};
  EXPECT_EQ(keys, want);
  EXPECT_EQ(miss->get("op")->string, "solve");
  EXPECT_EQ(miss->get("machine")->string, "1080Ti/p4");
  EXPECT_EQ(miss->get("code")->string, "ok");
  EXPECT_EQ(miss->get("cache")->string, "miss");
  EXPECT_EQ(miss->get("id")->string, "q1");
  EXPECT_GE(miss->get("queue_ms")->number, 0.0);
  EXPECT_GE(miss->get("solve_ms")->number, 0.0);
  EXPECT_LE(miss->get("solve_ms")->number, miss->get("total_ms")->number);
  EXPECT_DOUBLE_EQ(miss->get("deadline_ms")->number, 30000.0);

  // Cache hit: never queued, so queue_ms/solve_ms are absent.
  const auto hit = pase::testing::JsonParser::parse(tail[1]);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->get("cache")->string, "hit");
  EXPECT_EQ(hit->get("id")->string, "q2");
  EXPECT_EQ(hit->get("queue_ms"), nullptr);
  EXPECT_EQ(hit->get("solve_ms"), nullptr);
  // The event seq matches the seq stamped on the response line.
  EXPECT_EQ(hit->get("seq")->number, 1.0);
}

TEST(ServeObs, SeqIsMonotoneAndStampedOnResponses) {
  ServeCore core(quiet_options());
  for (int k = 0; k < 3; ++k) {
    const auto r = parse_json(core.handle_line("{\"op\":\"ping\"}"));
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->get_number("seq", -1.0), static_cast<double>(k));
  }
  // Malformed input still gets a seq and exactly one event line.
  const auto bad = parse_json(core.handle_line("not json"));
  EXPECT_EQ(bad->get_number("seq", -1.0), 3.0);
  EXPECT_EQ(core.event_log().total(), 4u);
}

TEST(ServeObs, ConcurrentBurstLogsExactlyOneLinePerRequest) {
  ServeOptions options = quiet_options();
  options.workers = 4;
  options.event_log_memory = 256;
  ServeCore core(options);
  constexpr i64 kRequests = 48;
  std::atomic<i64> next{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&] {
      for (;;) {
        const i64 k = next.fetch_add(1, std::memory_order_relaxed);
        if (k >= kRequests) return;
        core.handle_line(solve_line("mlp", (k % 2) ? 4 : 2));
      }
    });
  }
  for (auto& t : clients) t.join();

  // Exactly one line per request, every line parses, and the seqs are a
  // permutation of 0..N-1 — no drops, no duplicates under concurrency.
  EXPECT_EQ(core.event_log().total(), static_cast<u64>(kRequests));
  const std::vector<std::string> lines = core.event_log().tail();
  ASSERT_EQ(lines.size(), static_cast<size_t>(kRequests));
  std::set<i64> seqs;
  for (const std::string& line : lines) {
    const auto ev = parse_json(line);
    ASSERT_TRUE(ev.has_value()) << line;
    seqs.insert(static_cast<i64>(ev->get_number("seq", -1.0)));
  }
  EXPECT_EQ(seqs.size(), static_cast<size_t>(kRequests));
  EXPECT_EQ(*seqs.begin(), 0);
  EXPECT_EQ(*seqs.rbegin(), kRequests - 1);
}

TEST(ServeObs, TraceStitchesRequestSpansToSolverPhases) {
  ServeOptions options = quiet_options();
  options.trace = true;
  ServeCore core(options);
  const auto resp = parse_json(core.handle_line(solve_line("mlp", 4)));
  ASSERT_EQ(resp->get_string("code"), "ok");
  const double seq = resp->get_number("seq", -1.0);

  const auto parsed =
      pase::testing::JsonParser::parse(core.trace_chrome_json());
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->is_array());

  const pase::testing::JsonValue* request = nullptr;
  const pase::testing::JsonValue* handle = nullptr;
  const pase::testing::JsonValue* solve = nullptr;
  const pase::testing::JsonValue* table_fill = nullptr;
  for (const auto& e : parsed->array) {
    const std::string& name = e.get("name")->string;
    if (name == "request") request = &e;
    if (name == "handle") handle = &e;
    if (name == "solve") solve = &e;
    if (name == "table_fill") table_fill = &e;
  }
  // One merged timeline: the transport-level request span, the handler
  // span nested inside it, and the solver's own phase spans on the worker
  // lane — all joined by the "seq" arg.
  ASSERT_NE(request, nullptr);
  ASSERT_NE(handle, nullptr);
  ASSERT_NE(solve, nullptr);
  ASSERT_NE(table_fill, nullptr) << "solver phases missing from the trace";
  EXPECT_EQ(request->get("args")->get("seq")->number, seq);
  EXPECT_EQ(solve->get("args")->get("seq")->number, seq);
  // handle nests inside request (same lane).
  EXPECT_EQ(handle->get("tid")->number, request->get("tid")->number);
  EXPECT_GE(handle->get("ts")->number, request->get("ts")->number);
  EXPECT_LE(handle->get("ts")->number + handle->get("dur")->number,
            request->get("ts")->number + request->get("dur")->number + 0.002);
  // The solver phases land on the request's worker lane.
  EXPECT_EQ(table_fill->get("tid")->number, solve->get("tid")->number);
  EXPECT_GE(table_fill->get("ts")->number, solve->get("ts")->number);
  EXPECT_EQ(core.traces_kept(), 1u);
}

TEST(ServeObs, SlowExemplarModeKeepsOnlySlowRequests) {
  ServeOptions options = quiet_options();
  options.trace = true;
  options.slow_trace_ms = 150.0;
  options.inject.slow_rate = 1.0;  // every *solve* sleeps 250ms
  options.inject.slow_seconds = 0.25;
  ServeCore core(options);

  const std::string line = solve_line("mlp", 4);
  core.handle_line(line);  // cold: injected sleep -> over threshold, kept
  core.handle_line(line);  // cache hit: no worker, fast -> dropped
  EXPECT_EQ(core.traces_kept(), 1u);
  EXPECT_EQ(core.metrics().counter("serve.trace.kept"), 1u);
  EXPECT_EQ(core.metrics().counter("serve.trace.dropped"), 1u);

  // The kept exemplar is the slow request: its injected sleep is visible.
  EXPECT_NE(core.trace_chrome_json().find("inject_slow"), std::string::npos);
}

TEST(ServeObs, MetricsOpReportsRollingSloQuantiles) {
  ServeCore core(quiet_options());
  const std::string line = solve_line("mlp", 4);
  core.handle_line(line);
  core.handle_line(line);
  core.handle_line(line);
  const auto r = parse_json(core.handle_line("{\"op\":\"metrics\"}"));
  ASSERT_TRUE(r.has_value());

  // total covers all 3 solves; queue_wait/solve only the one admitted
  // flight (the two hits never reached a worker).
  const Json* slo = r->get("slo");
  ASSERT_NE(slo, nullptr);
  EXPECT_EQ(slo->get("window")->number, 512.0);
  EXPECT_EQ(slo->get("total")->get("count")->number, 3.0);
  EXPECT_EQ(slo->get("queue_wait")->get("count")->number, 1.0);
  EXPECT_EQ(slo->get("solve")->get("count")->number, 1.0);
  EXPECT_GT(slo->get("total")->get("p99_ms")->number, 0.0);
  EXPECT_LE(slo->get("total")->get("p50_ms")->number,
            slo->get("total")->get("p99_ms")->number);

  // The same quantiles ride the gauges section of the metrics snapshot.
  const Json* gauges = r->get("metrics")->get("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_NE(gauges->get("serve.slo.total_p50_ms"), nullptr);
  EXPECT_NE(gauges->get("serve.slo.queue_p99_ms"), nullptr);

  // slo_snapshot() agrees with the served numbers.
  const ServeCore::SloSnapshot snap = core.slo_snapshot();
  EXPECT_EQ(snap.total.count, 3);
  EXPECT_EQ(snap.queue_wait.count, 1);
  EXPECT_DOUBLE_EQ(snap.total.p50,
                   slo->get("total")->get("p50_ms")->number);
}

// ---------------------------------------------------------------------------
// Delta re-solves (docs/SCALING.md): per-adjacency DpContext reuse

TEST(ServeCore, DeltaReSolveReusesTablesAcrossDeviceCounts) {
  ServeCore core(quiet_options());
  // First solve of this topology: context primed, nothing to reuse.
  const auto cold = parse_json(core.handle_line(solve_line("mlp", 4)));
  ASSERT_EQ(cold->get_string("code"), "ok");
  EXPECT_EQ(core.metrics().counter("serve.reuse.misses"), 1u);
  EXPECT_EQ(core.metrics().counter("serve.reuse.hits"), 0u);

  // Different device count: a result-cache miss, but the graph adjacency
  // is unchanged, so the solver reuses the stored ordering/vertex sets.
  const auto delta = parse_json(core.handle_line(solve_line("mlp", 8)));
  ASSERT_EQ(delta->get_string("code"), "ok");
  EXPECT_EQ(delta->get_string("cache"), "miss");
  EXPECT_EQ(core.metrics().counter("serve.reuse.hits"), 1u);

  // Reuse must be invisible in the answer: bit-identical to a cold core.
  ServeCore fresh(quiet_options());
  const auto direct = parse_json(fresh.handle_line(solve_line("mlp", 8)));
  EXPECT_EQ(delta->get_string("strategy"), direct->get_string("strategy"));
  EXPECT_EQ(delta->get_number("cost"), direct->get_number("cost"));

  // The event log records the reuse on the delta line only.
  const std::vector<std::string> tail = core.event_log().tail();
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_FALSE(parse_json(tail[0])->get_bool("reuse", false));
  EXPECT_TRUE(parse_json(tail[1])->get_bool("reuse", false));
}

// ---------------------------------------------------------------------------
// Widened strategy space over the wire: split_dims and pipeline_stages

TEST(ServeProtocol, SplitDimsAreCanonicalizedAndValidated) {
  // Equivalent spellings canonicalize to one string at parse time, so the
  // result-cache key unifies them.
  const auto a = parse_request(
      "{\"op\":\"solve\",\"zoo\":\"mlp\",\"split_dims\":"
      "\"spatial,batch,param\"}");
  ASSERT_TRUE(a.ok);
  const auto b = parse_request(
      "{\"op\":\"solve\",\"zoo\":\"mlp\",\"split_dims\":"
      "\"batch,param,spatial\"}");
  ASSERT_TRUE(b.ok);
  EXPECT_EQ(a.request.split_dims, b.request.split_dims);

  // Default = the legacy space.
  const auto d = parse_request("{\"op\":\"solve\",\"zoo\":\"mlp\"}");
  ASSERT_TRUE(d.ok);
  EXPECT_EQ(d.request.split_dims, "batch,param");
  EXPECT_EQ(d.request.pipeline_stages, 1);

  EXPECT_FALSE(parse_request("{\"op\":\"solve\",\"zoo\":\"mlp\","
                             "\"split_dims\":\"bogus\"}")
                   .ok);
  EXPECT_FALSE(parse_request("{\"op\":\"solve\",\"zoo\":\"mlp\","
                             "\"split_dims\":\"batch,\"}")
                   .ok);
  EXPECT_FALSE(parse_request("{\"op\":\"solve\",\"zoo\":\"mlp\","
                             "\"split_dims\":7}")
                   .ok);
}

TEST(ServeProtocol, PipelineStagesValidatedAgainstDevices) {
  const auto ok = parse_request(
      "{\"op\":\"solve\",\"zoo\":\"mlp\",\"devices\":8,"
      "\"pipeline_stages\":2,\"microbatches\":16}");
  ASSERT_TRUE(ok.ok);
  EXPECT_EQ(ok.request.pipeline_stages, 2);
  EXPECT_EQ(ok.request.microbatches, 16);
  // 3 does not divide 8.
  EXPECT_FALSE(parse_request("{\"op\":\"solve\",\"zoo\":\"mlp\","
                             "\"devices\":8,\"pipeline_stages\":3}")
                   .ok);
  // Out of range (boundary DP coarsens to ~24 cuts).
  EXPECT_FALSE(parse_request("{\"op\":\"solve\",\"zoo\":\"mlp\","
                             "\"devices\":32,\"pipeline_stages\":32}")
                   .ok);
  EXPECT_FALSE(parse_request("{\"op\":\"solve\",\"zoo\":\"mlp\","
                             "\"microbatches\":0}")
                   .ok);
}

TEST(ServeCore, SplitDimsKeyMissesThenHitsAndSpellingsShareOneEntry) {
  ServeCore core(quiet_options());
  const auto plain = parse_json(core.handle_line(solve_line("mlp", 4)));
  ASSERT_EQ(plain->get_string("code"), "ok");
  // A widened request is a different key: miss, not a false hit off the
  // legacy entry.
  const auto widened = parse_json(core.handle_line(
      solve_line("mlp", 4, ",\"split_dims\":\"all\"")));
  ASSERT_EQ(widened->get_string("code"), "ok");
  EXPECT_EQ(widened->get_string("cache"), "miss");
  // mlp is FC-only, so the widened space degenerates to the legacy one and
  // the answers must agree bit for bit — through different cache entries.
  EXPECT_EQ(widened->get_number("cost"), plain->get_number("cost"));
  EXPECT_EQ(widened->get_string("strategy"), plain->get_string("strategy"));
  // An equivalent spelling of the same space is a hit on the same entry.
  const auto respelled = parse_json(core.handle_line(solve_line(
      "mlp", 4, ",\"split_dims\":\"channel,spatial,param,batch\"")));
  EXPECT_EQ(respelled->get_string("cache"), "hit");
  // An explicit legacy spelling hits the default entry.
  const auto legacy = parse_json(core.handle_line(
      solve_line("mlp", 4, ",\"split_dims\":\"batch,param\"")));
  EXPECT_EQ(legacy->get_string("cache"), "hit");
  EXPECT_EQ(core.metrics().counter("serve.cache.hits"), 2u);
  EXPECT_EQ(core.metrics().counter("serve.cache.misses"), 2u);
}

TEST(ServeCore, PipelineStagesSolveRoundTripAndKeying) {
  ServeCore core(quiet_options());
  const auto plain = parse_json(
      core.handle_line(solve_line("transformer_pipelined", 8)));
  ASSERT_EQ(plain->get_string("code"), "ok");
  const std::string pipelined_line = solve_line(
      "transformer_pipelined", 8, ",\"pipeline_stages\":2");
  const auto first = parse_json(core.handle_line(pipelined_line));
  ASSERT_EQ(first->get_string("code"), "ok");
  EXPECT_EQ(first->get_string("cache"), "miss");  // distinct key
  const auto second = parse_json(core.handle_line(pipelined_line));
  ASSERT_EQ(second->get_string("code"), "ok");
  EXPECT_EQ(second->get_string("cache"), "hit");
  EXPECT_EQ(first->get_string("strategy"), second->get_string("strategy"));
  EXPECT_EQ(first->get_number("cost"), second->get_number("cost"));
  // Micro-batch count steers which partition wins, so it is part of the
  // key too.
  const auto more_mb = parse_json(core.handle_line(solve_line(
      "transformer_pipelined", 8,
      ",\"pipeline_stages\":2,\"microbatches\":64")));
  ASSERT_EQ(more_mb->get_string("code"), "ok");
  EXPECT_EQ(more_mb->get_string("cache"), "miss");
}

TEST(ServeCore, PipelineStagesExceedingLayersIsMalformed) {
  ServeCore core(quiet_options());
  // mlp has 4 layers; 8 stages parses (8 divides 8) but cannot partition.
  const auto r = parse_json(core.handle_line(
      solve_line("mlp", 8, ",\"pipeline_stages\":8")));
  EXPECT_EQ(r->get_string("code"), "malformed");
}

TEST(ServeCore, DeltaReSolveCanBeDisabled) {
  ServeOptions options = quiet_options();
  options.reuse_tables = false;
  ServeCore core(options);
  core.handle_line(solve_line("mlp", 4));
  core.handle_line(solve_line("mlp", 8));
  EXPECT_EQ(core.metrics().counter("serve.reuse.hits"), 0u);
  EXPECT_EQ(core.metrics().counter("serve.reuse.misses"), 0u);
}

}  // namespace
}  // namespace pase::serve
