// Tests for the zoo extensions (ResNet-50, VGG-16) and their interaction
// with the solver.
#include <gtest/gtest.h>

#include "core/dp_solver.h"
#include "core/ordering.h"
#include "core/dep_sets.h"
#include "cost/cost_model.h"
#include "models/models.h"
#include "ops/ops.h"
#include "search/baselines.h"

namespace pase {
namespace {

TEST(Zoo, Resnet50Structure) {
  const Graph g = models::resnet50();
  EXPECT_TRUE(g.weakly_connected());
  i64 convs = 0, adds = 0;
  for (const Node& n : g.nodes()) {
    convs += n.kind == OpKind::kConv2D;
    adds += n.kind == OpKind::kElementwise;
  }
  // 53 convolutions (1 stem + 16 blocks x 3 + 4 projections) and one
  // residual join per block.
  EXPECT_EQ(convs, 53);
  EXPECT_EQ(adds, 16);
}

TEST(Zoo, Resnet50HasDegreeThreeJoins) {
  const Graph g = models::resnet50();
  i64 joins = 0;
  for (const Node& n : g.nodes())
    if (n.kind == OpKind::kElementwise && g.degree(n.id) >= 3) ++joins;
  EXPECT_EQ(joins, 16);
}

TEST(Zoo, Resnet50OrderingStaysCheap) {
  // Skip connections only bump dependent sets slightly; GenerateSeq keeps
  // the DP tractable.
  const Graph g = models::resnet50();
  EXPECT_LE(max_dependent_set_size(g, generate_seq(g)), 3);
}

TEST(Zoo, Vgg16IsAPathGraph) {
  const Graph g = models::vgg16();
  EXPECT_TRUE(g.weakly_connected());
  for (const Node& n : g.nodes()) EXPECT_LE(g.degree(n.id), 2) << n.name;
  EXPECT_LE(max_dependent_set_size(g, generate_seq(g)), 1);
  EXPECT_EQ(g.num_nodes(), 22);  // 13 conv + 5 pool + 3 FC + softmax
}

TEST(Zoo, SolverBeatsDataParallelismOnZooModels) {
  for (const Graph& g : {models::resnet50(32), models::vgg16(32)}) {
    DpOptions opt;
    opt.config_options.max_devices = 8;
    opt.cost_params = CostParams::for_machine(MachineSpec::gtx1080ti(8));
    const DpResult r = find_best_strategy(g, opt);
    ASSERT_EQ(r.status, DpStatus::kOk);
    const CostModel cm(g, opt.cost_params);
    EXPECT_LE(r.best_cost,
              cm.total_cost(data_parallel_strategy(g, 8)) * (1 + 1e-9));
    EXPECT_LE(r.best_cost, cm.total_cost(owt_strategy(g, 8)) * (1 + 1e-9));
  }
}

TEST(Zoo, Vgg16FcLayersGoParameterParallel) {
  // VGG's 100M-parameter FC1 makes batch parallelism expensive — the OWT
  // motivation; the solver must avoid replicating it.
  const Graph g = models::vgg16();
  DpOptions opt;
  opt.config_options.max_devices = 32;
  opt.cost_params = CostParams::for_machine(MachineSpec::gtx1080ti(32));
  const DpResult r = find_best_strategy(g, opt);
  ASSERT_EQ(r.status, DpStatus::kOk);
  for (const Node& n : g.nodes()) {
    if (n.kind != OpKind::kFullyConnected) continue;
    const Config& c = r.strategy[static_cast<size_t>(n.id)];
    EXPECT_GE(c[1] * c[2], 8) << n.name;  // n x c split dominates
  }
}

TEST(Zoo, BatchPropagates) {
  const Graph g = models::resnet50(64);
  for (const Node& n : g.nodes()) {
    const i64 b = n.space.find("b");
    ASSERT_GE(b, 0) << n.name;
    EXPECT_EQ(n.space.dim(b).size, 64) << n.name;
  }
}


TEST(Zoo, MobileNetStructure) {
  const Graph g = models::mobilenet_v1();
  EXPECT_TRUE(g.weakly_connected());
  i64 dw = 0;
  for (const Node& n : g.nodes())
    if (n.name.rfind("DwConv", 0) == 0) ++dw;
  EXPECT_EQ(dw, 13);
  EXPECT_EQ(g.num_nodes(), 1 + 13 * 2 + 3);  // stem + blocks + head
}

TEST(Zoo, DepthwiseChannelSplitIsCommunicationFree) {
  const Node dw = ops::depthwise_conv2d("d", 8, 64, 16, 16, 3, 3);
  CostParams p;
  p.r = 1000.0;
  // Splitting channels shards the per-channel filters perfectly: no
  // gradient sync, no reduction; cost is pure compute.
  EXPECT_DOUBLE_EQ(layer_cost(dw, Config{1, 8, 1, 1, 1, 1}, p),
                   layer_flops(dw, Config{1, 8, 1, 1, 1, 1}, p));
}

TEST(Zoo, GnmtStructureAndSolvability) {
  const Graph g = models::gnmt();
  EXPECT_TRUE(g.weakly_connected());
  EXPECT_EQ(g.num_nodes(), 7);
  DpOptions opt;
  opt.config_options.max_devices = 8;
  opt.cost_params = CostParams::for_machine(MachineSpec::gtx1080ti(8));
  const DpResult r = find_best_strategy(g, opt);
  ASSERT_EQ(r.status, DpStatus::kOk);
  const CostModel cm(g, opt.cost_params);
  EXPECT_LE(r.best_cost,
            cm.total_cost(data_parallel_strategy(g, 8)) * (1 + 1e-9));
  EXPECT_LE(r.best_cost,
            cm.total_cost(expert_strategy(g, 8)) * (1 + 1e-9));
}

TEST(Zoo, GnmtEncoderDecoderSplitLayerDim) {
  const Graph g = models::gnmt();
  DpOptions opt;
  opt.config_options.max_devices = 32;
  opt.cost_params = CostParams::for_machine(MachineSpec::gtx1080ti(32));
  const DpResult r = find_best_strategy(g, opt);
  ASSERT_EQ(r.status, DpStatus::kOk);
  // The two LSTM stacks keep the pipeline-friendly layer split available;
  // whichever configuration wins must parallelize beyond pure batch.
  for (const Node& n : g.nodes())
    if (n.kind == OpKind::kLSTM)
      EXPECT_GT(r.strategy[static_cast<size_t>(n.id)].degree(), 1) << n.name;
}

}  // namespace
}  // namespace pase
