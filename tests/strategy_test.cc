#include <gtest/gtest.h>

#include "core/strategy.h"
#include "models/models.h"
#include "search/baselines.h"

namespace pase {
namespace {

ConfigOptions copts(i64 p) {
  ConfigOptions o;
  o.max_devices = p;
  return o;
}

TEST(StrategyValid, AcceptsBaselines) {
  const Graph g = models::alexnet();
  EXPECT_TRUE(strategy_valid(g, data_parallel_strategy(g, 8), copts(8)));
  EXPECT_TRUE(strategy_valid(g, owt_strategy(g, 8), copts(8)));
}

TEST(StrategyValid, RejectsWrongSize) {
  const Graph g = models::alexnet();
  Strategy phi = data_parallel_strategy(g, 8);
  phi.pop_back();
  EXPECT_FALSE(strategy_valid(g, phi, copts(8)));
}

TEST(StrategyValid, RejectsWrongRank) {
  const Graph g = models::mlp(8, {16, 8});
  Strategy phi = data_parallel_strategy(g, 4);
  phi[0] = Config::ones(2);  // FC rank is 3
  EXPECT_FALSE(strategy_valid(g, phi, copts(4)));
}

TEST(StrategyValid, RejectsOverBudgetDegree) {
  const Graph g = models::mlp(64, {64, 64});
  Strategy phi = data_parallel_strategy(g, 4);
  phi[0] = Config{4, 4, 1};  // degree 16 > p = 4
  EXPECT_FALSE(strategy_valid(g, phi, copts(4)));
}

TEST(StrategyValid, RejectsNonPow2WhenRequired) {
  const Graph g = models::mlp(64, {64, 64});
  Strategy phi = data_parallel_strategy(g, 8);
  phi[0] = Config{3, 1, 1};
  EXPECT_FALSE(strategy_valid(g, phi, copts(8)));
  ConfigOptions relaxed = copts(8);
  relaxed.powers_of_two_only = false;
  EXPECT_TRUE(strategy_valid(g, phi, relaxed));
}

TEST(StrategyValid, RejectsSplitOfNonSplittableDim) {
  const Graph g = models::alexnet();
  Strategy phi = data_parallel_strategy(g, 8);
  phi[0] = Config{1, 1, 2, 1, 1, 1, 1};  // conv h is not splittable
  EXPECT_FALSE(strategy_valid(g, phi, copts(8)));
}

TEST(StrategyValid, RejectsOverExtentSplit) {
  const Graph g = models::mlp(2, {64, 64});
  Strategy phi = data_parallel_strategy(g, 8);
  phi[0] = Config{8, 1, 1};  // batch extent is only 2
  EXPECT_FALSE(strategy_valid(g, phi, copts(8)));
}

TEST(StrategyValid, FullUseRequiresExactDegree) {
  const Graph g = models::mlp(64, {64, 64});
  ConfigOptions full = copts(8);
  full.require_full_use = true;
  EXPECT_FALSE(
      strategy_valid(g, Strategy(2, Config::ones(3) /*softmax rank 2!*/),
                     full));
  Strategy phi = {Config{8, 1, 1}, Config{8, 1}};
  // mlp(64,{64,64}) = FC (b,n,c) + softmax (b,n).
  EXPECT_TRUE(strategy_valid(g, phi, full));
}

TEST(StrategyToString, ContainsAllNodes) {
  const Graph g = models::rnnlm();
  const std::string s =
      strategy_to_string(g, data_parallel_strategy(g, 8));
  for (const Node& n : g.nodes())
    EXPECT_NE(s.find(n.name), std::string::npos) << n.name;
}

TEST(StrategyTable, CollapsesRuns) {
  const Graph g = models::alexnet();
  const std::string t =
      strategy_table("AlexNet", g, data_parallel_strategy(g, 8));
  // Conv1..Pool5 all share bchwrs/bchwnrs? No: conv and pool spaces differ,
  // so runs break at kind changes, but FC1..FC2 share "bnc" + config.
  EXPECT_NE(t.find("AlexNet"), std::string::npos);
  EXPECT_NE(t.find("(8, 1, 1)"), std::string::npos);
  EXPECT_NE(t.find(".."), std::string::npos);  // at least one collapsed run
}

TEST(StrategyTable, SingletonRunsKeepPlainLabels) {
  const Graph g = models::rnnlm();
  const std::string t =
      strategy_table("RNNLM", g, data_parallel_strategy(g, 8));
  EXPECT_NE(t.find("LSTM"), std::string::npos);
  EXPECT_NE(t.find("lbsde"), std::string::npos);
}

}  // namespace
}  // namespace pase
