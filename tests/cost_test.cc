#include <gtest/gtest.h>

#include "cost/cost_model.h"
#include "cost/machine.h"
#include "models/models.h"
#include "ops/ops.h"
#include "search/baselines.h"
#include "test_util.h"

namespace pase {
namespace {

CostParams unit_params() {
  CostParams p;
  p.r = 1.0;
  return p;
}

TEST(RingAllReduce, Formula) {
  EXPECT_DOUBLE_EQ(ring_all_reduce_bytes(100.0, 1), 0.0);
  EXPECT_DOUBLE_EQ(ring_all_reduce_bytes(100.0, 2), 100.0);
  EXPECT_DOUBLE_EQ(ring_all_reduce_bytes(100.0, 4), 150.0);
  EXPECT_DOUBLE_EQ(ring_all_reduce_bytes(0.0, 8), 0.0);
}

TEST(LayerCost, SerialConfigIsPureCompute) {
  const Node fc = ops::fully_connected("f", 8, 16, 32);
  const CostParams p = unit_params();
  const double cost = layer_cost(fc, Config::ones(3), p);
  EXPECT_DOUBLE_EQ(cost, fc.fwd_flops() * (1.0 + p.bwd_flops_multiplier));
}

TEST(LayerCost, ComputeDividesByDegree) {
  const Node fc = ops::fully_connected("f", 64, 64, 64);
  const CostParams p = unit_params();
  EXPECT_DOUBLE_EQ(layer_flops(fc, Config{4, 1, 1}, p),
                   layer_flops(fc, Config::ones(3), p) / 4.0);
}

TEST(LayerCost, DataParallelPaysGradientAllReduce) {
  const Node fc = ops::fully_connected("f", 64, 64, 64);
  CostParams p = unit_params();
  p.gradient_comm_discount = 1.0;
  const Config dp{8, 1, 1};
  const auto comms = layer_collectives(fc, dp, p);
  ASSERT_EQ(comms.size(), 2u);  // weight + bias gradients
  EXPECT_EQ(comms[0].kind, CollectiveComm::Kind::kGradientAllReduce);
  EXPECT_EQ(comms[0].group, 8);
  EXPECT_DOUBLE_EQ(comms[0].bytes,
                   ring_all_reduce_bytes(64.0 * 64 * 4, 8));
  // The full layer cost includes r x those bytes.
  const double expected = layer_flops(fc, dp, p) +
                          p.r * (comms[0].bytes + comms[1].bytes);
  EXPECT_DOUBLE_EQ(layer_cost(fc, dp, p), expected);
}

TEST(LayerCost, ParameterSplitAvoidsGradientSync) {
  const Node fc = ops::fully_connected("f", 64, 64, 64);
  // Splitting n and c shards every parameter: no replicas, no gradient sync.
  const auto comms = layer_collectives(fc, Config{1, 4, 1}, unit_params());
  for (const auto& c : comms)
    EXPECT_NE(c.kind, CollectiveComm::Kind::kGradientAllReduce);
}

TEST(LayerCost, ReductionSplitPaysPartialSumAllReduce) {
  const Node fc = ops::fully_connected("f", 64, 64, 64);
  const CostParams p = unit_params();
  const auto comms = layer_collectives(fc, Config{1, 1, 8}, p);
  bool found = false;
  for (const auto& c : comms)
    if (c.kind == CollectiveComm::Kind::kReduceAllReduce) {
      found = true;
      EXPECT_EQ(c.group, 8);
      // Output shard = full output (output dims unsplit), both directions.
      EXPECT_DOUBLE_EQ(
          c.bytes, p.fwd_bwd_comm_multiplier *
                       ring_all_reduce_bytes(64.0 * 64 * 4, 8));
    }
  EXPECT_TRUE(found);
}

TEST(LayerCost, HaloOnlyWhenSpatialSplit) {
  const Node conv =
      ops::conv2d("c", 8, 16, 32, 32, 16, 3, 3, /*allow_spatial_split=*/true);
  const CostParams p = unit_params();
  auto has_halo = [&](const Config& c) {
    for (const auto& comm : layer_collectives(conv, c, p))
      if (comm.kind == CollectiveComm::Kind::kHaloExchange) return true;
    return false;
  };
  EXPECT_FALSE(has_halo(Config{8, 1, 1, 1, 1, 1, 1}));
  EXPECT_TRUE(has_halo(Config{1, 1, 4, 1, 1, 1, 1}));
}

TEST(LayerCost, GradientDiscountApplies) {
  const Node fc = ops::fully_connected("f", 64, 64, 64);
  CostParams full = unit_params();
  full.gradient_comm_discount = 1.0;
  CostParams half = unit_params();
  half.gradient_comm_discount = 0.5;
  const Config dp{8, 1, 1};
  const double grad_bytes =
      layer_cost(fc, dp, full) - layer_flops(fc, dp, full);
  EXPECT_NEAR(layer_cost(fc, dp, half),
              layer_flops(fc, dp, half) + 0.5 * grad_bytes, 1e-6);
}

TEST(TransferBytes, ZeroWhenAligned) {
  Graph g;
  g.add_node(ops::fully_connected("a", 64, 64, 64));
  g.add_node(ops::fully_connected("b", 64, 64, 64));
  g.add_edge_named(0, 1, {"b", "n"}, {"b", "c"});
  const CostParams p = unit_params();
  // Producer splits (b=4, n=2); consumer needs (b=4, c=2): aligned.
  EXPECT_DOUBLE_EQ(
      transfer_bytes(g.edge(0), Config{4, 2, 1}, Config{4, 1, 2}, p), 0.0);
  // Identical data-parallel configs are aligned too.
  EXPECT_DOUBLE_EQ(
      transfer_bytes(g.edge(0), Config{8, 1, 1}, Config{8, 1, 1}, p), 0.0);
}

TEST(TransferBytes, MismatchCostsNeedMinusOverlap) {
  Graph g;
  g.add_node(ops::fully_connected("a", 64, 64, 64));
  g.add_node(ops::fully_connected("b", 64, 64, 64));
  g.add_edge_named(0, 1, {"b", "n"}, {"b", "c"});
  const CostParams p = unit_params();
  // Producer data-parallel (b=8); consumer splits c=8: consumer needs
  // 64*(64/8), holds overlap 64/8 * 64/8.
  const double need = 64.0 * 8;
  const double overlap = 8.0 * 8;
  EXPECT_DOUBLE_EQ(
      transfer_bytes(g.edge(0), Config{8, 1, 1}, Config{1, 1, 8}, p),
      (need - overlap) * p.bytes_per_element * p.fwd_bwd_comm_multiplier);
}

TEST(TransferBytes, DirectionAgnostic) {
  // Paper footnote 2: t_x(u,v,phi) = t_x(v,u,phi). Swapping the roles of
  // the two endpoints (shape and dim maps mirrored) gives the same cost
  // when need equals on both sides; here both need the full tensor slices.
  Graph g;
  g.add_node(ops::fully_connected("a", 64, 64, 64));
  g.add_node(ops::fully_connected("b", 64, 64, 64));
  g.add_edge_named(0, 1, {"b", "n"}, {"b", "c"});
  g.add_edge_named(1, 0, {"b", "c"}, {"b", "n"});
  const CostParams p = unit_params();
  const Config c0{4, 2, 1}, c1{2, 1, 4};
  EXPECT_DOUBLE_EQ(transfer_bytes(g.edge(0), c0, c1, p),
                   transfer_bytes(g.edge(1), c1, c0, p));
}

TEST(TransferBytes, UnmappedConsumerDimNeedsFullExtent) {
  Graph g;
  g.add_node(ops::fully_connected("a", 64, 64, 64));
  g.add_node(ops::fully_connected("b", 64, 64, 64));
  g.add_edge_named(0, 1, {"b", "n"}, {"b", ""}, {64, 64});
  const CostParams p = unit_params();
  // Forward: consumer needs all of n even though the producer split it.
  const double fwd_need = 64.0 / 8 * 64;
  const double overlap = 64.0 / 8 * 64 / 8;
  // Backward: the producer side (degree 64) is wider than the consumer
  // (degree 8), so some of its devices hold none of the gradient: full need.
  const double bwd_need = 64.0 / 8 * 64 / 8;
  EXPECT_DOUBLE_EQ(
      transfer_bytes(g.edge(0), Config{8, 8, 1}, Config{8, 1, 1}, p),
      ((fwd_need - overlap) + bwd_need) * p.bytes_per_element);
}

TEST(TransferBytes, SplitClampedByExtent) {
  Graph g;
  g.add_node(ops::fully_connected("a", 64, 64, 64));
  g.add_node(ops::fully_connected("b", 64, 64, 64));
  // Tensor dim of extent 2 mapped to dims that may be split 8 ways.
  g.add_edge(0, 1, {2}, {0}, {0});
  const CostParams p = unit_params();
  const double bytes =
      transfer_bytes(g.edge(0), Config{8, 1, 1}, Config{1, 1, 1}, p);
  // Need = 2, overlap = 2/min(8,2) = 1.
  EXPECT_DOUBLE_EQ(bytes, (2.0 - 1.0) * p.bytes_per_element *
                              p.fwd_bwd_comm_multiplier);
}

TEST(CostModel, EvaluateBreakdownSums) {
  const Graph g = models::alexnet();
  const CostModel cm(g, unit_params());
  const Strategy phi = data_parallel_strategy(g, 8);
  const CostBreakdown b = cm.evaluate(phi);
  EXPECT_GT(b.layer, 0.0);
  EXPECT_GE(b.transfer, 0.0);
  EXPECT_DOUBLE_EQ(b.total(), b.layer + b.transfer);
  EXPECT_DOUBLE_EQ(cm.total_cost(phi), b.total());
}

class DeltaCostSweep : public ::testing::TestWithParam<u64> {};

TEST_P(DeltaCostSweep, DeltaMatchesFullReevaluation) {
  const Graph g = testing::random_graph(6, 3, GetParam());
  ConfigOptions copts;
  copts.max_devices = 8;
  const ConfigCache cache(g, copts);
  CostParams params = unit_params();
  params.r = 100.0;
  const CostModel cm(g, params);
  Rng rng(GetParam() * 77 + 1);

  Strategy phi;
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    phi.push_back(cache.at(v)[rng.uniform(cache.at(v).size())]);

  for (int trial = 0; trial < 30; ++trial) {
    const NodeId v =
        static_cast<NodeId>(rng.uniform(static_cast<u64>(g.num_nodes())));
    const Config next = cache.at(v)[rng.uniform(cache.at(v).size())];
    const double before = cm.total_cost(phi);
    const double delta = cm.delta_cost(phi, v, next);
    Strategy changed = phi;
    changed[static_cast<size_t>(v)] = next;
    const double after = cm.total_cost(changed);
    EXPECT_NEAR(delta, after - before, 1e-6 * (1.0 + std::abs(after)));
    phi = changed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeltaCostSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Machine, FlopToByteRatio) {
  MachineSpec m;
  m.peak_flops = 10e12;
  m.link_bandwidth = 5e9;
  EXPECT_DOUBLE_EQ(m.flop_to_byte_ratio(), 2000.0);
}

TEST(Machine, PresetsAreSane) {
  const MachineSpec a = MachineSpec::gtx1080ti(32);
  const MachineSpec b = MachineSpec::rtx2080ti(32);
  EXPECT_EQ(a.num_devices, 32);
  EXPECT_EQ(b.num_devices, 32);
  // The paper's key observation: the 2080Ti system has a much lower machine
  // balance (higher FLOPs per byte of bandwidth).
  EXPECT_GT(b.flop_to_byte_ratio(), 2.0 * a.flop_to_byte_ratio());
  EXPECT_GT(b.peak_flops, a.peak_flops);
  EXPECT_LT(b.intra_bw(), a.intra_bw());
}

TEST(Machine, CostParamsInheritMachineKnobs) {
  const MachineSpec m = MachineSpec::rtx2080ti(8);
  const CostParams p = CostParams::for_machine(m);
  EXPECT_DOUBLE_EQ(p.r, m.flop_to_byte_ratio() * m.compute_efficiency);
  EXPECT_DOUBLE_EQ(p.gradient_comm_discount, m.gradient_comm_discount);
}

}  // namespace
}  // namespace pase
