#include "cost/cost_cache.h"

#include <gtest/gtest.h>

#include "core/dp_solver.h"
#include "cost/cost_model.h"
#include "models/models.h"
#include "test_util.h"

namespace pase {
namespace {

CostParams params_for(i64 p) {
  return CostParams::for_machine(MachineSpec::gtx1080ti(p));
}

// ---- Structural equivalence classes.

TEST(CostCache, IdenticalLayersShareAClass) {
  // mlp(16, {64, 64, 64}) stacks FC layers with identical shapes; the
  // repeated middle layers must collapse into one class.
  const Graph g = models::mlp(16, {64, 64, 64, 64});
  const CostCache cache(g);
  EXPECT_LT(cache.num_node_classes(), g.num_nodes());
  EXPECT_LT(cache.num_edge_classes(), g.num_edges());
}

TEST(CostCache, TransformerLayerStackSharesClasses) {
  // 6 structurally identical encoder and decoder layers: class count must
  // be far below the node count.
  const Graph g = models::transformer();
  const CostCache cache(g);
  EXPECT_LT(cache.num_node_classes(), g.num_nodes() / 2);
}

TEST(CostCache, DistinctLayersGetDistinctClasses) {
  Graph g;
  const NodeId a = g.add_node(ops::fully_connected("A", 64, 4096, 1024));
  const NodeId b = g.add_node(ops::fully_connected("B", 64, 4096, 4096));
  const NodeId c = g.add_node(ops::fully_connected("C", 64, 4096, 1024));
  g.add_edge_named(a, b, {"b", "n"}, {"b", "c"});
  g.add_edge_named(b, c, {"b", "n"}, {"b", "c"});
  const CostCache cache(g);
  EXPECT_NE(cache.node_class(a), cache.node_class(b));
  EXPECT_EQ(cache.node_class(a), cache.node_class(c));  // A and C identical
}

// ---- Hit/miss accounting and eviction-free correctness.

TEST(CostCache, CountsHitsAndMisses) {
  const Graph g = testing::random_graph(5, 2, 42);
  CostCache cache(g);
  CostModel cached(g, params_for(4));
  cached.attach_cache(&cache);
  const CostModel plain(g, params_for(4));

  ConfigOptions copts;
  copts.max_devices = 4;
  const ConfigCache configs(g, copts);
  ASSERT_GE(configs.at(0).size(), 2u);
  const Config cfg = configs.at(0)[1];  // some non-serial configuration
  const double first = cached.node_cost(0, cfg);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 1u);
  const double second = cached.node_cost(0, cfg);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  // A cache hit returns exactly the bits the direct computation produces.
  EXPECT_EQ(first, second);
  EXPECT_EQ(first, plain.node_cost(0, cfg));
}

TEST(CostCache, CachedValuesMatchUncachedEverywhere) {
  // No eviction and exact class construction: every (node, config) and
  // (edge, config pair) query must agree bit-for-bit with the uncached
  // model, hit or miss, across repeated passes.
  const Graph g = testing::random_graph(6, 3, 7);
  const ConfigCache configs(g, [] {
    ConfigOptions o;
    o.max_devices = 8;
    return o;
  }());
  CostCache cache(g);
  CostModel cached(g, params_for(8));
  cached.attach_cache(&cache);
  const CostModel plain(g, params_for(8));

  u64 misses_after_first_pass = 0;
  for (int pass = 0; pass < 2; ++pass) {
    for (NodeId v = 0; v < g.num_nodes(); ++v)
      for (const Config& c : configs.at(v))
        ASSERT_EQ(cached.node_cost(v, c), plain.node_cost(v, c));
    for (const Edge& e : g.edges())
      for (const Config& cs : configs.at(e.src))
        for (const Config& cd : configs.at(e.dst))
          ASSERT_EQ(cached.edge_cost(e, cs, cd), plain.edge_cost(e, cs, cd));
    if (pass == 0) misses_after_first_pass = cache.misses();
  }
  EXPECT_GT(cache.hits(), 0u);
  // Eviction-free: the second pass is all hits, no new misses.
  EXPECT_EQ(cache.misses(), misses_after_first_pass);
}

// ---- End-to-end: the cache is invisible in DP results.

TEST(CostCache, DpSolverResultsIdenticalWithAndWithoutCache) {
  for (const char* name : {"alexnet", "transformer"}) {
    const Graph g = std::string(name) == "alexnet" ? models::alexnet()
                                                   : models::transformer();
    DpOptions with = [] {
      DpOptions o;
      o.config_options.max_devices = 8;
      o.cost_params = CostParams::for_machine(MachineSpec::gtx1080ti(8));
      return o;
    }();
    DpOptions without = with;
    with.use_cost_cache = true;
    without.use_cost_cache = false;

    const DpResult a = find_best_strategy(g, with);
    const DpResult b = find_best_strategy(g, without);
    ASSERT_EQ(a.status, b.status) << name;
    EXPECT_EQ(a.best_cost, b.best_cost) << name;
    EXPECT_EQ(a.strategy, b.strategy) << name;
    // The cache did real work on these repeated-structure models...
    EXPECT_GT(a.cost_cache_hits, 0u) << name;
    // ...and the uncached run reports no cache traffic.
    EXPECT_EQ(b.cost_cache_hits + b.cost_cache_misses, 0u) << name;
  }
}

}  // namespace
}  // namespace pase
