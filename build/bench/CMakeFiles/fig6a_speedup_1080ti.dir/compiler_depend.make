# Empty compiler generated dependencies file for fig6a_speedup_1080ti.
# This may be replaced when dependencies are built.
