file(REMOVE_RECURSE
  "CMakeFiles/fig6a_speedup_1080ti.dir/fig6a_speedup_1080ti.cc.o"
  "CMakeFiles/fig6a_speedup_1080ti.dir/fig6a_speedup_1080ti.cc.o.d"
  "fig6a_speedup_1080ti"
  "fig6a_speedup_1080ti.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6a_speedup_1080ti.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
