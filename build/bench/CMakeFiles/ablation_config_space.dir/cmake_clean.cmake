file(REMOVE_RECURSE
  "CMakeFiles/ablation_config_space.dir/ablation_config_space.cc.o"
  "CMakeFiles/ablation_config_space.dir/ablation_config_space.cc.o.d"
  "ablation_config_space"
  "ablation_config_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_config_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
