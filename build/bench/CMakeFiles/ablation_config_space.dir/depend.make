# Empty dependencies file for ablation_config_space.
# This may be replaced when dependencies are built.
