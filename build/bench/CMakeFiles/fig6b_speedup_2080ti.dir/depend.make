# Empty dependencies file for fig6b_speedup_2080ti.
# This may be replaced when dependencies are built.
