file(REMOVE_RECURSE
  "CMakeFiles/fig6b_speedup_2080ti.dir/fig6b_speedup_2080ti.cc.o"
  "CMakeFiles/fig6b_speedup_2080ti.dir/fig6b_speedup_2080ti.cc.o.d"
  "fig6b_speedup_2080ti"
  "fig6b_speedup_2080ti.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6b_speedup_2080ti.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
