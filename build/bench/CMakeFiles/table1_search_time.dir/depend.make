# Empty dependencies file for table1_search_time.
# This may be replaced when dependencies are built.
