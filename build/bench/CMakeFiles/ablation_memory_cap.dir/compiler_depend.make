# Empty compiler generated dependencies file for ablation_memory_cap.
# This may be replaced when dependencies are built.
