file(REMOVE_RECURSE
  "CMakeFiles/ablation_memory_cap.dir/ablation_memory_cap.cc.o"
  "CMakeFiles/ablation_memory_cap.dir/ablation_memory_cap.cc.o.d"
  "ablation_memory_cap"
  "ablation_memory_cap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_memory_cap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
