file(REMOVE_RECURSE
  "CMakeFiles/ablation_depsets.dir/ablation_depsets.cc.o"
  "CMakeFiles/ablation_depsets.dir/ablation_depsets.cc.o.d"
  "ablation_depsets"
  "ablation_depsets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_depsets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
