# Empty compiler generated dependencies file for ablation_depsets.
# This may be replaced when dependencies are built.
