# Empty compiler generated dependencies file for pase_cli.
# This may be replaced when dependencies are built.
