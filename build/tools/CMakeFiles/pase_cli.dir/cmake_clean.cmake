file(REMOVE_RECURSE
  "CMakeFiles/pase_cli.dir/pase_cli.cc.o"
  "CMakeFiles/pase_cli.dir/pase_cli.cc.o.d"
  "pase_cli"
  "pase_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pase_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
