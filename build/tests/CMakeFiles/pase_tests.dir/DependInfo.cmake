
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/config_test.cc" "tests/CMakeFiles/pase_tests.dir/config_test.cc.o" "gcc" "tests/CMakeFiles/pase_tests.dir/config_test.cc.o.d"
  "/root/repo/tests/cost_test.cc" "tests/CMakeFiles/pase_tests.dir/cost_test.cc.o" "gcc" "tests/CMakeFiles/pase_tests.dir/cost_test.cc.o.d"
  "/root/repo/tests/dep_sets_test.cc" "tests/CMakeFiles/pase_tests.dir/dep_sets_test.cc.o" "gcc" "tests/CMakeFiles/pase_tests.dir/dep_sets_test.cc.o.d"
  "/root/repo/tests/dp_solver_test.cc" "tests/CMakeFiles/pase_tests.dir/dp_solver_test.cc.o" "gcc" "tests/CMakeFiles/pase_tests.dir/dp_solver_test.cc.o.d"
  "/root/repo/tests/graph_test.cc" "tests/CMakeFiles/pase_tests.dir/graph_test.cc.o" "gcc" "tests/CMakeFiles/pase_tests.dir/graph_test.cc.o.d"
  "/root/repo/tests/hetero_test.cc" "tests/CMakeFiles/pase_tests.dir/hetero_test.cc.o" "gcc" "tests/CMakeFiles/pase_tests.dir/hetero_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/pase_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/pase_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/io_test.cc" "tests/CMakeFiles/pase_tests.dir/io_test.cc.o" "gcc" "tests/CMakeFiles/pase_tests.dir/io_test.cc.o.d"
  "/root/repo/tests/memcap_test.cc" "tests/CMakeFiles/pase_tests.dir/memcap_test.cc.o" "gcc" "tests/CMakeFiles/pase_tests.dir/memcap_test.cc.o.d"
  "/root/repo/tests/model_parser_test.cc" "tests/CMakeFiles/pase_tests.dir/model_parser_test.cc.o" "gcc" "tests/CMakeFiles/pase_tests.dir/model_parser_test.cc.o.d"
  "/root/repo/tests/models_test.cc" "tests/CMakeFiles/pase_tests.dir/models_test.cc.o" "gcc" "tests/CMakeFiles/pase_tests.dir/models_test.cc.o.d"
  "/root/repo/tests/ops_test.cc" "tests/CMakeFiles/pase_tests.dir/ops_test.cc.o" "gcc" "tests/CMakeFiles/pase_tests.dir/ops_test.cc.o.d"
  "/root/repo/tests/ordering_test.cc" "tests/CMakeFiles/pase_tests.dir/ordering_test.cc.o" "gcc" "tests/CMakeFiles/pase_tests.dir/ordering_test.cc.o.d"
  "/root/repo/tests/pipeline_test.cc" "tests/CMakeFiles/pase_tests.dir/pipeline_test.cc.o" "gcc" "tests/CMakeFiles/pase_tests.dir/pipeline_test.cc.o.d"
  "/root/repo/tests/placement_test.cc" "tests/CMakeFiles/pase_tests.dir/placement_test.cc.o" "gcc" "tests/CMakeFiles/pase_tests.dir/placement_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/pase_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/pase_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/search_test.cc" "tests/CMakeFiles/pase_tests.dir/search_test.cc.o" "gcc" "tests/CMakeFiles/pase_tests.dir/search_test.cc.o.d"
  "/root/repo/tests/sim_test.cc" "tests/CMakeFiles/pase_tests.dir/sim_test.cc.o" "gcc" "tests/CMakeFiles/pase_tests.dir/sim_test.cc.o.d"
  "/root/repo/tests/strategy_test.cc" "tests/CMakeFiles/pase_tests.dir/strategy_test.cc.o" "gcc" "tests/CMakeFiles/pase_tests.dir/strategy_test.cc.o.d"
  "/root/repo/tests/util_test.cc" "tests/CMakeFiles/pase_tests.dir/util_test.cc.o" "gcc" "tests/CMakeFiles/pase_tests.dir/util_test.cc.o.d"
  "/root/repo/tests/zoo_test.cc" "tests/CMakeFiles/pase_tests.dir/zoo_test.cc.o" "gcc" "tests/CMakeFiles/pase_tests.dir/zoo_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pase_core.dir/DependInfo.cmake"
  "/root/repo/build/src/search/CMakeFiles/pase_search.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/pase_models.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pase_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/pase_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/pase_io.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/pase_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/pase_config.dir/DependInfo.cmake"
  "/root/repo/build/src/ops/CMakeFiles/pase_ops.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/pase_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pase_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
