file(REMOVE_RECURSE
  "CMakeFiles/pase_config.dir/config_enum.cc.o"
  "CMakeFiles/pase_config.dir/config_enum.cc.o.d"
  "libpase_config.a"
  "libpase_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pase_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
