file(REMOVE_RECURSE
  "libpase_config.a"
)
