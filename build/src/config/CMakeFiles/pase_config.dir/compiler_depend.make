# Empty compiler generated dependencies file for pase_config.
# This may be replaced when dependencies are built.
