
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/config/config_enum.cc" "src/config/CMakeFiles/pase_config.dir/config_enum.cc.o" "gcc" "src/config/CMakeFiles/pase_config.dir/config_enum.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/pase_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pase_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
