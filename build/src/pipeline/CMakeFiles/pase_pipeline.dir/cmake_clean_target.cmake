file(REMOVE_RECURSE
  "libpase_pipeline.a"
)
