# Empty compiler generated dependencies file for pase_pipeline.
# This may be replaced when dependencies are built.
