file(REMOVE_RECURSE
  "CMakeFiles/pase_pipeline.dir/pipeline.cc.o"
  "CMakeFiles/pase_pipeline.dir/pipeline.cc.o.d"
  "libpase_pipeline.a"
  "libpase_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pase_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
