file(REMOVE_RECURSE
  "libpase_util.a"
)
