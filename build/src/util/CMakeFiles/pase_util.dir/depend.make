# Empty dependencies file for pase_util.
# This may be replaced when dependencies are built.
