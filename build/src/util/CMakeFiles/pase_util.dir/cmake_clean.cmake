file(REMOVE_RECURSE
  "CMakeFiles/pase_util.dir/table.cc.o"
  "CMakeFiles/pase_util.dir/table.cc.o.d"
  "CMakeFiles/pase_util.dir/timer.cc.o"
  "CMakeFiles/pase_util.dir/timer.cc.o.d"
  "libpase_util.a"
  "libpase_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pase_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
