# Empty compiler generated dependencies file for pase_core.
# This may be replaced when dependencies are built.
