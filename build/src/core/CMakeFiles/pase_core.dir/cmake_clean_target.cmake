file(REMOVE_RECURSE
  "libpase_core.a"
)
