file(REMOVE_RECURSE
  "CMakeFiles/pase_core.dir/dep_sets.cc.o"
  "CMakeFiles/pase_core.dir/dep_sets.cc.o.d"
  "CMakeFiles/pase_core.dir/dp_solver.cc.o"
  "CMakeFiles/pase_core.dir/dp_solver.cc.o.d"
  "CMakeFiles/pase_core.dir/ordering.cc.o"
  "CMakeFiles/pase_core.dir/ordering.cc.o.d"
  "CMakeFiles/pase_core.dir/strategy.cc.o"
  "CMakeFiles/pase_core.dir/strategy.cc.o.d"
  "libpase_core.a"
  "libpase_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pase_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
