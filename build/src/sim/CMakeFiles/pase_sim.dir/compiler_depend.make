# Empty compiler generated dependencies file for pase_sim.
# This may be replaced when dependencies are built.
