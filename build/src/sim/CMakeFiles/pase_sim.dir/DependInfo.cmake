
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/memory.cc" "src/sim/CMakeFiles/pase_sim.dir/memory.cc.o" "gcc" "src/sim/CMakeFiles/pase_sim.dir/memory.cc.o.d"
  "/root/repo/src/sim/placement.cc" "src/sim/CMakeFiles/pase_sim.dir/placement.cc.o" "gcc" "src/sim/CMakeFiles/pase_sim.dir/placement.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/sim/CMakeFiles/pase_sim.dir/simulator.cc.o" "gcc" "src/sim/CMakeFiles/pase_sim.dir/simulator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cost/CMakeFiles/pase_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/pase_config.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/pase_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pase_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
