file(REMOVE_RECURSE
  "libpase_sim.a"
)
