file(REMOVE_RECURSE
  "CMakeFiles/pase_graph.dir/graph.cc.o"
  "CMakeFiles/pase_graph.dir/graph.cc.o.d"
  "libpase_graph.a"
  "libpase_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pase_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
