# Empty compiler generated dependencies file for pase_graph.
# This may be replaced when dependencies are built.
