file(REMOVE_RECURSE
  "libpase_graph.a"
)
