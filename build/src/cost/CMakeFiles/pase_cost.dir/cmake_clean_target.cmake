file(REMOVE_RECURSE
  "libpase_cost.a"
)
