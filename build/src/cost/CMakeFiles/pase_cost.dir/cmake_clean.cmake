file(REMOVE_RECURSE
  "CMakeFiles/pase_cost.dir/cost_model.cc.o"
  "CMakeFiles/pase_cost.dir/cost_model.cc.o.d"
  "libpase_cost.a"
  "libpase_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pase_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
