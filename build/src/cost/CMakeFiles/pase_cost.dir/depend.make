# Empty dependencies file for pase_cost.
# This may be replaced when dependencies are built.
