file(REMOVE_RECURSE
  "CMakeFiles/pase_search.dir/baselines.cc.o"
  "CMakeFiles/pase_search.dir/baselines.cc.o.d"
  "CMakeFiles/pase_search.dir/brute_force.cc.o"
  "CMakeFiles/pase_search.dir/brute_force.cc.o.d"
  "CMakeFiles/pase_search.dir/mcmc.cc.o"
  "CMakeFiles/pase_search.dir/mcmc.cc.o.d"
  "libpase_search.a"
  "libpase_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pase_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
