# Empty dependencies file for pase_search.
# This may be replaced when dependencies are built.
