
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/search/baselines.cc" "src/search/CMakeFiles/pase_search.dir/baselines.cc.o" "gcc" "src/search/CMakeFiles/pase_search.dir/baselines.cc.o.d"
  "/root/repo/src/search/brute_force.cc" "src/search/CMakeFiles/pase_search.dir/brute_force.cc.o" "gcc" "src/search/CMakeFiles/pase_search.dir/brute_force.cc.o.d"
  "/root/repo/src/search/mcmc.cc" "src/search/CMakeFiles/pase_search.dir/mcmc.cc.o" "gcc" "src/search/CMakeFiles/pase_search.dir/mcmc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cost/CMakeFiles/pase_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/pase_config.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/pase_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pase_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
