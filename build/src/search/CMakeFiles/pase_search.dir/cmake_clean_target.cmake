file(REMOVE_RECURSE
  "libpase_search.a"
)
