file(REMOVE_RECURSE
  "libpase_models.a"
)
