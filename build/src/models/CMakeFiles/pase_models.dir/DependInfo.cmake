
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/alexnet.cc" "src/models/CMakeFiles/pase_models.dir/alexnet.cc.o" "gcc" "src/models/CMakeFiles/pase_models.dir/alexnet.cc.o.d"
  "/root/repo/src/models/densenet.cc" "src/models/CMakeFiles/pase_models.dir/densenet.cc.o" "gcc" "src/models/CMakeFiles/pase_models.dir/densenet.cc.o.d"
  "/root/repo/src/models/inception_v3.cc" "src/models/CMakeFiles/pase_models.dir/inception_v3.cc.o" "gcc" "src/models/CMakeFiles/pase_models.dir/inception_v3.cc.o.d"
  "/root/repo/src/models/mobilenet_gnmt.cc" "src/models/CMakeFiles/pase_models.dir/mobilenet_gnmt.cc.o" "gcc" "src/models/CMakeFiles/pase_models.dir/mobilenet_gnmt.cc.o.d"
  "/root/repo/src/models/resnet.cc" "src/models/CMakeFiles/pase_models.dir/resnet.cc.o" "gcc" "src/models/CMakeFiles/pase_models.dir/resnet.cc.o.d"
  "/root/repo/src/models/rnnlm.cc" "src/models/CMakeFiles/pase_models.dir/rnnlm.cc.o" "gcc" "src/models/CMakeFiles/pase_models.dir/rnnlm.cc.o.d"
  "/root/repo/src/models/transformer.cc" "src/models/CMakeFiles/pase_models.dir/transformer.cc.o" "gcc" "src/models/CMakeFiles/pase_models.dir/transformer.cc.o.d"
  "/root/repo/src/models/wiring.cc" "src/models/CMakeFiles/pase_models.dir/wiring.cc.o" "gcc" "src/models/CMakeFiles/pase_models.dir/wiring.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ops/CMakeFiles/pase_ops.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/pase_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pase_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
