# Empty compiler generated dependencies file for pase_models.
# This may be replaced when dependencies are built.
