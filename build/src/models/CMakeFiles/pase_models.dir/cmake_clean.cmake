file(REMOVE_RECURSE
  "CMakeFiles/pase_models.dir/alexnet.cc.o"
  "CMakeFiles/pase_models.dir/alexnet.cc.o.d"
  "CMakeFiles/pase_models.dir/densenet.cc.o"
  "CMakeFiles/pase_models.dir/densenet.cc.o.d"
  "CMakeFiles/pase_models.dir/inception_v3.cc.o"
  "CMakeFiles/pase_models.dir/inception_v3.cc.o.d"
  "CMakeFiles/pase_models.dir/mobilenet_gnmt.cc.o"
  "CMakeFiles/pase_models.dir/mobilenet_gnmt.cc.o.d"
  "CMakeFiles/pase_models.dir/resnet.cc.o"
  "CMakeFiles/pase_models.dir/resnet.cc.o.d"
  "CMakeFiles/pase_models.dir/rnnlm.cc.o"
  "CMakeFiles/pase_models.dir/rnnlm.cc.o.d"
  "CMakeFiles/pase_models.dir/transformer.cc.o"
  "CMakeFiles/pase_models.dir/transformer.cc.o.d"
  "CMakeFiles/pase_models.dir/wiring.cc.o"
  "CMakeFiles/pase_models.dir/wiring.cc.o.d"
  "libpase_models.a"
  "libpase_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pase_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
