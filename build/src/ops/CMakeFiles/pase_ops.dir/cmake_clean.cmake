file(REMOVE_RECURSE
  "CMakeFiles/pase_ops.dir/ops.cc.o"
  "CMakeFiles/pase_ops.dir/ops.cc.o.d"
  "libpase_ops.a"
  "libpase_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pase_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
