file(REMOVE_RECURSE
  "libpase_ops.a"
)
