# Empty dependencies file for pase_ops.
# This may be replaced when dependencies are built.
