# Empty compiler generated dependencies file for pase_io.
# This may be replaced when dependencies are built.
