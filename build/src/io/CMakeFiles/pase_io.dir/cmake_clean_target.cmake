file(REMOVE_RECURSE
  "libpase_io.a"
)
