file(REMOVE_RECURSE
  "CMakeFiles/pase_io.dir/model_parser.cc.o"
  "CMakeFiles/pase_io.dir/model_parser.cc.o.d"
  "CMakeFiles/pase_io.dir/strategy_io.cc.o"
  "CMakeFiles/pase_io.dir/strategy_io.cc.o.d"
  "libpase_io.a"
  "libpase_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pase_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
