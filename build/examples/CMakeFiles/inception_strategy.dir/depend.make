# Empty dependencies file for inception_strategy.
# This may be replaced when dependencies are built.
