file(REMOVE_RECURSE
  "CMakeFiles/inception_strategy.dir/inception_strategy.cpp.o"
  "CMakeFiles/inception_strategy.dir/inception_strategy.cpp.o.d"
  "inception_strategy"
  "inception_strategy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inception_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
