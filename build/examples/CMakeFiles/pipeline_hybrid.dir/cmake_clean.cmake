file(REMOVE_RECURSE
  "CMakeFiles/pipeline_hybrid.dir/pipeline_hybrid.cpp.o"
  "CMakeFiles/pipeline_hybrid.dir/pipeline_hybrid.cpp.o.d"
  "pipeline_hybrid"
  "pipeline_hybrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
