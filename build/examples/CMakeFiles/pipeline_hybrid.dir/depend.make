# Empty dependencies file for pipeline_hybrid.
# This may be replaced when dependencies are built.
