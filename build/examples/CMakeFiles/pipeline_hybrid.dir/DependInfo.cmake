
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/pipeline_hybrid.cpp" "examples/CMakeFiles/pipeline_hybrid.dir/pipeline_hybrid.cpp.o" "gcc" "examples/CMakeFiles/pipeline_hybrid.dir/pipeline_hybrid.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pase_core.dir/DependInfo.cmake"
  "/root/repo/build/src/search/CMakeFiles/pase_search.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/pase_models.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pase_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/pase_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/pase_io.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/pase_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/pase_config.dir/DependInfo.cmake"
  "/root/repo/build/src/ops/CMakeFiles/pase_ops.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/pase_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pase_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
