file(REMOVE_RECURSE
  "CMakeFiles/transformer_strategy.dir/transformer_strategy.cpp.o"
  "CMakeFiles/transformer_strategy.dir/transformer_strategy.cpp.o.d"
  "transformer_strategy"
  "transformer_strategy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transformer_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
