# Empty dependencies file for transformer_strategy.
# This may be replaced when dependencies are built.
